"""Rolling-origin forecast evaluation.

Used by tests and the predictor ablation bench to compare ARIMA against the
baseline predictors on the same arrival series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.forecasting.predictors import Predictor


@dataclass(frozen=True)
class ForecastScore:
    """One-step-ahead accuracy over a rolling evaluation."""

    mae: float
    rmse: float
    mape: float
    num_forecasts: int

    def as_dict(self) -> dict:
        return {
            "mae": self.mae,
            "rmse": self.rmse,
            "mape": self.mape,
            "num_forecasts": self.num_forecasts,
        }


def rolling_origin_evaluation(
    series: np.ndarray | list[float],
    predictor_factory: Callable[[], Predictor],
    warmup: int = 12,
) -> ForecastScore:
    """Feed the series one value at a time; score one-step-ahead forecasts.

    The first ``warmup`` observations only train the predictor; forecasts
    made after that point are compared to the next actual value.
    """
    series = np.asarray(series, dtype=float)
    if series.size <= warmup + 1:
        raise ValueError(
            f"series of length {series.size} too short for warmup {warmup}"
        )
    predictor = predictor_factory()
    errors = []
    actuals = []
    for t in range(series.size - 1):
        predictor.update(series[t])
        if t + 1 <= warmup:
            continue
        prediction = float(predictor.forecast(1)[0])
        actual = float(series[t + 1])
        errors.append(prediction - actual)
        actuals.append(actual)
    errors_arr = np.asarray(errors)
    actuals_arr = np.asarray(actuals)
    nonzero = np.abs(actuals_arr) > 1e-9
    mape = (
        float(np.mean(np.abs(errors_arr[nonzero] / actuals_arr[nonzero])))
        if nonzero.any()
        else float("nan")
    )
    return ForecastScore(
        mae=float(np.mean(np.abs(errors_arr))),
        rmse=float(np.sqrt(np.mean(errors_arr**2))),
        mape=mape,
        num_forecasts=len(errors),
    )
