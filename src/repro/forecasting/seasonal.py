"""Seasonal arrival predictors.

Data-center arrivals carry a strong diurnal cycle (Figs. 1-2, 19).  Plain
ARIMA needs high orders to capture a 24-hour period at 5-minute control
intervals (288 steps); these predictors exploit the period directly:

- :class:`SeasonalNaivePredictor` — forecast = the value one period ago;
- :class:`SeasonalEwmaPredictor` — multiplicative decomposition: an EWMA
  level times an EWMA per-slot seasonal index (a streaming Holt-Winters
  without the trend term).

Both implement the standard ``update/forecast`` predictor protocol and are
available via ``make_predictor("seasonal_naive" | "seasonal_ewma")``.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.forecasting.predictors import _check_steps


class SeasonalNaivePredictor:
    """Forecast = observation one season ago (falls back to last value)."""

    def __init__(self, period: int = 288) -> None:
        if period < 2:
            raise ValueError(f"period must be >= 2, got {period}")
        self.period = period
        self._history: deque[float] = deque(maxlen=period)
        self._last = 0.0

    def update(self, value: float) -> None:
        value = float(value)
        self._history.append(value)
        self._last = value

    def forecast(self, steps: int) -> np.ndarray:
        _check_steps(steps)
        if len(self._history) < self.period:
            return np.full(steps, max(self._last, 0.0))
        season = list(self._history)
        result = [season[(len(season) + k) % self.period] for k in range(steps)]
        return np.maximum(np.asarray(result, dtype=float), 0.0)

    def to_state(self) -> dict:
        """Serve-checkpoint encoding (history window + last value)."""
        return {"history": list(self._history), "last": self._last}

    def restore_state(self, state: dict) -> None:
        self._history = deque(
            (float(v) for v in state["history"]), maxlen=self.period
        )
        self._last = float(state["last"])


class SeasonalEwmaPredictor:
    """Streaming multiplicative level x seasonal-index decomposition.

    ``level`` tracks the deseasonalized mean with smoothing ``alpha``;
    ``index[slot]`` tracks each within-period slot's multiplicative factor
    with smoothing ``gamma``.  Forecast for horizon step k is
    ``level * index[(t + k) mod period]``.
    """

    def __init__(self, period: int = 288, alpha: float = 0.3, gamma: float = 0.1) -> None:
        if period < 2:
            raise ValueError(f"period must be >= 2, got {period}")
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if not 0 < gamma <= 1:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.period = period
        self.alpha = alpha
        self.gamma = gamma
        self._indices = np.ones(period)
        self._level: float | None = None
        self._slot = 0

    def update(self, value: float) -> None:
        value = float(value)
        slot = self._slot
        self._slot = (self._slot + 1) % self.period
        index = self._indices[slot]
        if self._level is None:
            self._level = max(value, 1e-9)
            return
        deseasonalized = value / max(index, 1e-9)
        self._level = self.alpha * deseasonalized + (1 - self.alpha) * self._level
        if self._level > 1e-9:
            observed_index = value / self._level
            self._indices[slot] = (
                self.gamma * observed_index + (1 - self.gamma) * index
            )

    def forecast(self, steps: int) -> np.ndarray:
        _check_steps(steps)
        level = self._level if self._level is not None else 0.0
        slots = [(self._slot + k) % self.period for k in range(steps)]
        return np.maximum(level * self._indices[slots], 0.0)
