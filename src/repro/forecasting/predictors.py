"""Streaming arrival-rate predictors.

The controller observes one arrival count per control interval per task
class and needs forecasts for the next W intervals (Algorithm 1, line 4).
Every predictor implements the same two-method protocol:

- ``update(value)``  -- feed the latest observation;
- ``forecast(steps)`` -- non-negative point forecasts for the next ``steps``.

:class:`ArimaPredictor` is the paper's choice; the others serve as ablation
baselines (``bench_ablation_predictor``).
"""

from __future__ import annotations

from collections import deque
from typing import Protocol, runtime_checkable

import numpy as np

from repro.forecasting.arima import ArimaOrder, fit_arima


@runtime_checkable
class Predictor(Protocol):
    """Streaming forecaster protocol."""

    def update(self, value: float) -> None:
        """Observe the latest interval's value."""

    def forecast(self, steps: int) -> np.ndarray:
        """Non-negative point forecasts for the next ``steps`` intervals."""


class NaivePredictor:
    """Forecasts the last observed value (random-walk forecast)."""

    def __init__(self) -> None:
        self._last = 0.0

    def update(self, value: float) -> None:
        self._last = float(value)

    def forecast(self, steps: int) -> np.ndarray:
        _check_steps(steps)
        return np.full(steps, max(self._last, 0.0))


class MovingAveragePredictor:
    """Forecasts the mean of the last ``window`` observations."""

    def __init__(self, window: int = 6) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._values: deque[float] = deque(maxlen=window)

    def update(self, value: float) -> None:
        self._values.append(float(value))

    def forecast(self, steps: int) -> np.ndarray:
        _check_steps(steps)
        level = float(np.mean(self._values)) if self._values else 0.0
        return np.full(steps, max(level, 0.0))


class EwmaPredictor:
    """Exponentially weighted moving average (simple exponential smoothing)."""

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._level: float | None = None

    def update(self, value: float) -> None:
        value = float(value)
        if self._level is None:
            self._level = value
        else:
            self._level = self.alpha * value + (1 - self.alpha) * self._level

    def forecast(self, steps: int) -> np.ndarray:
        _check_steps(steps)
        level = self._level if self._level is not None else 0.0
        return np.full(steps, max(level, 0.0))

    def to_state(self) -> dict:
        """Serve-checkpoint encoding (level only; alpha is config)."""
        return {"level": self._level}

    def restore_state(self, state: dict) -> None:
        self._level = None if state["level"] is None else float(state["level"])


class HoltPredictor:
    """Holt's linear (double exponential) smoothing: level + trend."""

    def __init__(self, alpha: float = 0.4, beta: float = 0.1) -> None:
        if not 0 < alpha <= 1:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if not 0 < beta <= 1:
            raise ValueError(f"beta must be in (0, 1], got {beta}")
        self.alpha = alpha
        self.beta = beta
        self._level: float | None = None
        self._trend = 0.0

    def update(self, value: float) -> None:
        value = float(value)
        if self._level is None:
            self._level = value
            self._trend = 0.0
            return
        previous_level = self._level
        self._level = self.alpha * value + (1 - self.alpha) * (previous_level + self._trend)
        self._trend = self.beta * (self._level - previous_level) + (1 - self.beta) * self._trend

    def forecast(self, steps: int) -> np.ndarray:
        _check_steps(steps)
        level = self._level if self._level is not None else 0.0
        horizon = np.arange(1, steps + 1)
        return np.maximum(level + self._trend * horizon, 0.0)


class ArimaPredictor:
    """The paper's ARIMA arrival predictor (Section VI).

    Keeps a sliding window of observations, refits every ``refit_every``
    updates, and falls back to EWMA while the window is too short for the
    requested order.
    """

    def __init__(
        self,
        order: ArimaOrder | tuple[int, int, int] = (2, 0, 1),
        window: int = 96,
        refit_every: int = 4,
        fallback_alpha: float = 0.3,
    ) -> None:
        if not isinstance(order, ArimaOrder):
            order = ArimaOrder(*order)
        if window < 8:
            raise ValueError(f"window must be >= 8, got {window}")
        if refit_every < 1:
            raise ValueError(f"refit_every must be >= 1, got {refit_every}")
        self.order = order
        self.window = window
        self.refit_every = refit_every
        self._values: deque[float] = deque(maxlen=window)
        self._since_refit = 0
        self._model = None
        self._fallback = EwmaPredictor(alpha=fallback_alpha)

    @property
    def min_observations(self) -> int:
        """Observations needed before ARIMA fitting is attempted."""
        return max(self.order.p + self.order.d + self.order.q + 2, 12)

    def update(self, value: float) -> None:
        self._values.append(float(value))
        self._fallback.update(value)
        self._since_refit += 1
        if (
            len(self._values) >= self.min_observations
            and (self._model is None or self._since_refit >= self.refit_every)
        ):
            try:
                self._model = fit_arima(np.asarray(self._values), self.order)
                self._since_refit = 0
            except (ValueError, np.linalg.LinAlgError):
                self._model = None

    def forecast(self, steps: int) -> np.ndarray:
        _check_steps(steps)
        if self._model is None:
            return self._fallback.forecast(steps)
        # Forecast from the *current* window with the fitted parameters —
        # the model itself may be a few observations old (refit_every).
        try:
            prediction = self._model.forecast_from(np.asarray(self._values), steps)
        except ValueError:
            prediction = self._model.forecast(steps)
        if not np.isfinite(prediction).all():
            return self._fallback.forecast(steps)
        # A borderline non-stationary fit can forecast absurd magnitudes;
        # clamp to a sane multiple of what has actually been observed.
        ceiling = max(10.0 * max(self._values, default=0.0), 10.0)
        return np.clip(prediction, 0.0, ceiling)


class FallbackChainPredictor:
    """Stage-health guard around any primary predictor (rungs like the ladder).

    The control-plane `DegradationLadder` keeps *decisions* coming when the
    solver dies; this is the analogous ladder for *forecasts*.  Every
    ``forecast()`` walks three rungs and returns the first usable output:

    | rung | name | source |
    |---|---|---|
    | 0 | ``primary`` | the wrapped predictor (ARIMA by default) |
    | 1 | ``seasonal_naive`` | same interval one period ago |
    | 2 | ``last_value`` | the last observation, held flat |

    A rung fails when it raises or emits a forecast with the wrong shape,
    NaN/Inf, or negative entries.  Degraded forecasts are recorded as
    ``(tick, rung, reason)`` on :attr:`timeline` — the same shape as the
    simulator's ``degradation_timeline`` — and tallied in
    :attr:`rung_counts`, which ``summary()["resilience"]["data_plane"]``
    aggregates per class.
    """

    RUNGS = ("primary", "seasonal_naive", "last_value")

    def __init__(self, primary: "Predictor | str | None" = None, period: int = 288) -> None:
        from repro.forecasting.seasonal import SeasonalNaivePredictor

        if primary is None:
            primary = ArimaPredictor()
        elif isinstance(primary, str):
            primary = make_predictor(primary)
        self.primary = primary
        self._seasonal = SeasonalNaivePredictor(period=period)
        self._last = 0.0
        self._tick = 0
        self._pending_reason: str | None = None
        self.timeline: list[tuple[int, int, str]] = []
        self.rung_counts: dict[str, int] = {name: 0 for name in self.RUNGS}

    def update(self, value: float) -> None:
        value = float(value)
        if not np.isfinite(value) or value < 0:
            # A poisoned observation must not corrupt every rung; feed the
            # last sane level instead and let the forecast path log it.
            self._pending_reason = "nonfinite_observation"
            value = self._last
        try:
            self.primary.update(value)
        except Exception as exc:  # a broken primary must not kill the stream
            self._pending_reason = _failure_reason(exc)
        self._seasonal.update(value)
        self._last = max(value, 0.0)
        self._tick += 1

    def forecast(self, steps: int) -> np.ndarray:
        _check_steps(steps)
        reason = self._pending_reason
        self._pending_reason = None
        if reason is None:
            try:
                prediction = np.asarray(self.primary.forecast(steps), dtype=float)
                if _usable(prediction, steps):
                    self._record(0, "ok")
                    return prediction
                reason = "nonfinite_forecast"
            except Exception as exc:
                reason = _failure_reason(exc)
        try:
            prediction = np.asarray(self._seasonal.forecast(steps), dtype=float)
            if _usable(prediction, steps):
                self._record(1, reason)
                return prediction
        except Exception as exc:
            reason = _failure_reason(exc)
        self._record(2, reason)
        return np.full(steps, self._last)

    def _record(self, rung: int, reason: str) -> None:
        self.rung_counts[self.RUNGS[rung]] += 1
        if rung > 0:
            self.timeline.append((self._tick, rung, reason))

    # ---------------------------------------------------- (de)serialization

    def to_state(self) -> dict:
        """Serve-checkpoint encoding of the whole chain.

        Requires a primary that itself implements ``to_state`` /
        ``restore_state`` (the serve daemon uses :class:`EwmaPredictor`);
        a primary without the seam raises so the gap is loud, not silent.
        """
        to_state = getattr(self.primary, "to_state", None)
        if to_state is None:
            raise TypeError(
                f"primary {type(self.primary).__name__} does not implement "
                "to_state(); cannot checkpoint this chain"
            )
        return {
            "primary": to_state(),
            "seasonal": self._seasonal.to_state(),
            "last": self._last,
            "tick": self._tick,
            "pending_reason": self._pending_reason,
            "timeline": [list(entry) for entry in self.timeline],
            "rung_counts": dict(self.rung_counts),
        }

    def restore_state(self, state: dict) -> None:
        self.primary.restore_state(state["primary"])
        self._seasonal.restore_state(state["seasonal"])
        self._last = float(state["last"])
        self._tick = int(state["tick"])
        self._pending_reason = state["pending_reason"]
        self.timeline = [
            (int(t), int(rung), str(reason)) for t, rung, reason in state["timeline"]
        ]
        self.rung_counts = {str(k): int(v) for k, v in state["rung_counts"].items()}


def _usable(prediction: np.ndarray, steps: int) -> bool:
    return (
        prediction.shape == (steps,)
        and bool(np.isfinite(prediction).all())
        and bool((prediction >= 0).all())
    )


def _failure_reason(exc: Exception) -> str:
    return getattr(exc, "code", None) or type(exc).__name__


def _predictor_registry() -> dict:
    # Imported lazily to avoid a circular import (seasonal uses _check_steps).
    from repro.forecasting.seasonal import (
        SeasonalEwmaPredictor,
        SeasonalNaivePredictor,
    )

    return {
        "naive": NaivePredictor,
        "moving_average": MovingAveragePredictor,
        "ewma": EwmaPredictor,
        "holt": HoltPredictor,
        "arima": ArimaPredictor,
        "seasonal_naive": SeasonalNaivePredictor,
        "seasonal_ewma": SeasonalEwmaPredictor,
        "fallback": FallbackChainPredictor,
    }


def make_predictor(name: str, **kwargs) -> Predictor:
    """Factory: ``make_predictor("arima", order=(2, 0, 1))``."""
    registry = _predictor_registry()
    try:
        cls = registry[name]
    except KeyError:
        raise ValueError(
            f"unknown predictor {name!r}; choose from {sorted(registry)}"
        ) from None
    return cls(**kwargs)


def _check_steps(steps: int) -> None:
    if steps < 1:
        raise ValueError(f"steps must be >= 1, got {steps}")
