"""ARIMA(p, d, q) from scratch.

The model for the d-times-differenced series ``w_t`` is

    w_t = c + sum_i phi_i w_{t-i} + sum_j theta_j e_{t-j} + e_t

Fitting minimizes the conditional sum of squares (CSS) of the one-step
residuals ``e_t`` with scipy's L-BFGS, seeded from an OLS autoregression.
Forecasting iterates the recursion with future shocks set to zero and then
inverts the differencing.  This matches the classic Box-Jenkins treatment the
paper cites [7] closely enough for arrival-rate prediction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import optimize


@dataclass(frozen=True)
class ArimaOrder:
    """(p, d, q) hyper-parameters."""

    p: int
    d: int
    q: int

    def __post_init__(self) -> None:
        if self.p < 0 or self.d < 0 or self.q < 0:
            raise ValueError(f"ARIMA order components must be >= 0, got {self}")
        if self.p == 0 and self.q == 0 and self.d == 0:
            raise ValueError("ARIMA(0,0,0) has no structure to fit")


def _difference(series: np.ndarray, d: int) -> tuple[np.ndarray, list[np.ndarray]]:
    """Apply d rounds of first differencing; keep heads for inversion."""
    heads: list[np.ndarray] = []
    current = series
    for _ in range(d):
        heads.append(current[:1].copy())
        current = np.diff(current)
    return current, heads


def _undifference(forecast: np.ndarray, tails: list[float]) -> np.ndarray:
    """Invert differencing given the last observed value at each level.

    ``tails[i]`` is the last value of the i-times-differenced series.
    """
    result = forecast
    for last in reversed(tails):
        result = last + np.cumsum(result)
    return result


def _css_residuals(
    w: np.ndarray, phi: np.ndarray, theta: np.ndarray, intercept: float
) -> np.ndarray:
    """One-step residuals of an ARMA recursion (pre-sample terms = 0)."""
    p, q = len(phi), len(theta)
    n = len(w)
    residuals = np.zeros(n)
    for t in range(n):
        prediction = intercept
        for i in range(min(p, t)):
            prediction += phi[i] * w[t - 1 - i]
        for j in range(min(q, t)):
            prediction += theta[j] * residuals[t - 1 - j]
        residuals[t] = w[t] - prediction
    return residuals


def _ols_ar_fit(w: np.ndarray, p: int) -> tuple[np.ndarray, float]:
    """Least-squares AR(p) fit used as the optimizer's starting point."""
    n = len(w)
    if p == 0 or n <= p + 1:
        return np.zeros(p), float(w.mean()) if n else 0.0
    rows = n - p
    design = np.ones((rows, p + 1))
    for i in range(p):
        design[:, i + 1] = w[p - 1 - i : n - 1 - i]
    target = w[p:]
    coefficients, *_ = np.linalg.lstsq(design, target, rcond=None)
    return coefficients[1:], float(coefficients[0])


@dataclass(frozen=True)
class ArimaModel:
    """A fitted ARIMA model.

    Use :func:`fit_arima` to construct; :meth:`forecast` produces point
    forecasts on the original (undifferenced) scale.
    """

    order: ArimaOrder
    phi: np.ndarray
    theta: np.ndarray
    intercept: float
    #: The d-times-differenced training series.
    w: np.ndarray
    #: In-sample residuals on the differenced scale.
    residuals: np.ndarray
    #: Last observed value of the series at each differencing level
    #: (level 0 = original series, ... level d-1).
    diff_tails: tuple[float, ...]

    @property
    def sigma2(self) -> float:
        """Residual variance estimate (conditioned past the AR burn-in)."""
        tail = self.residuals[self.order.p :]
        if tail.size == 0:
            return 0.0
        return float(np.mean(tail**2))

    @property
    def aic(self) -> float:
        """Akaike information criterion under Gaussian CSS likelihood."""
        n = max(self.residuals.size, 1)
        k = self.order.p + self.order.q + 1
        sigma2 = max(self.sigma2, 1e-12)
        return n * float(np.log(sigma2)) + 2 * k

    def forecast(self, steps: int) -> np.ndarray:
        """Point forecast ``steps`` ahead on the original scale."""
        return self._forecast_core(steps, self.w, self.residuals, self.diff_tails)

    def forecast_from(self, series: np.ndarray | list[float], steps: int) -> np.ndarray:
        """Forecast from *fresh* observations using the fitted parameters.

        Re-runs the residual recursion over ``series`` (cheap: O(n(p+q)))
        so a streaming predictor can forecast from the latest data without
        refitting.  ``series`` is on the original scale.
        """
        series = np.asarray(series, dtype=float)
        if series.size < self.order.d + 1:
            raise ValueError(
                f"need at least {self.order.d + 1} observations, got {series.size}"
            )
        w = series
        tails: list[float] = []
        for _ in range(self.order.d):
            tails.append(float(w[-1]))
            w = np.diff(w)
        residuals = _css_residuals(w, self.phi, self.theta, self.intercept)
        return self._forecast_core(steps, w, residuals, tuple(tails))

    def _forecast_core(
        self,
        steps: int,
        w: np.ndarray,
        residuals: np.ndarray,
        diff_tails: tuple[float, ...],
    ) -> np.ndarray:
        if steps < 1:
            raise ValueError(f"steps must be >= 1, got {steps}")
        p, q = self.order.p, self.order.q
        history = list(w)
        shocks = list(residuals)
        predictions = []
        for _ in range(steps):
            value = self.intercept
            for i in range(p):
                if len(history) > i:
                    value += self.phi[i] * history[-1 - i]
            for j in range(q):
                if len(shocks) > j:
                    value += self.theta[j] * shocks[-1 - j]
            predictions.append(value)
            history.append(value)
            shocks.append(0.0)  # future shocks have zero expectation
        forecast_w = np.asarray(predictions)
        if self.order.d == 0:
            return forecast_w
        return _undifference(forecast_w, list(diff_tails))


def fit_arima(
    series: np.ndarray | list[float],
    order: ArimaOrder | tuple[int, int, int] = (1, 0, 0),
) -> ArimaModel:
    """Fit ARIMA by conditional sum of squares.

    Parameters
    ----------
    series:
        Observations on the original scale (length must exceed
        ``p + d + q + 1``).
    order:
        ``(p, d, q)`` or an :class:`ArimaOrder`.
    """
    if not isinstance(order, ArimaOrder):
        order = ArimaOrder(*order)
    series = np.asarray(series, dtype=float)
    if series.ndim != 1:
        raise ValueError(f"series must be 1-D, got shape {series.shape}")
    if not np.isfinite(series).all():
        raise ValueError("series contains NaN or infinite values")
    min_length = order.p + order.d + order.q + 2
    if series.size < min_length:
        raise ValueError(
            f"need at least {min_length} observations for ARIMA{order}, "
            f"got {series.size}"
        )

    w = series
    tails: list[float] = []
    for _ in range(order.d):
        tails.append(float(w[-1]))
        w = np.diff(w)
    # tails[i] must be the last value of the i-times differenced series,
    # captured before the (i+1)-th difference — the loop above does exactly
    # that in order, so tails[0] is the original series tail.

    p, q = order.p, order.q
    phi0, intercept0 = _ols_ar_fit(w, p)
    x0 = np.concatenate([[intercept0], phi0, np.zeros(q)])

    def objective(params: np.ndarray) -> float:
        intercept = params[0]
        phi = params[1 : 1 + p]
        theta = params[1 + p :]
        with np.errstate(over="ignore", invalid="ignore"):
            residuals = _css_residuals(w, phi, theta, intercept)
            # *Conditional* sum of squares: the first p residuals have a
            # truncated AR history (pre-sample terms are zero) and would
            # otherwise dominate the fit whenever the series level is far
            # from zero, dragging phi toward zero.
            tail = residuals[p:]
            sse = float(tail @ tail)
        # Explosive (non-stationary/non-invertible) parameter regions can
        # overflow the recursion; steer the optimizer away with a large
        # finite penalty instead of propagating inf/NaN.
        if not math.isfinite(sse):
            return 1e30
        return sse

    if p + q > 0:
        solution = optimize.minimize(objective, x0, method="L-BFGS-B")
        params = solution.x
    else:
        params = x0
    intercept = float(params[0])
    phi = np.asarray(params[1 : 1 + p], dtype=float)
    theta = np.asarray(params[1 + p :], dtype=float)
    residuals = _css_residuals(w, phi, theta, intercept)

    return ArimaModel(
        order=order,
        phi=phi,
        theta=theta,
        intercept=intercept,
        w=w,
        residuals=residuals,
        diff_tails=tuple(tails),
    )


def select_order_aic(
    series: np.ndarray | list[float],
    p_values: tuple[int, ...] = (0, 1, 2),
    d_values: tuple[int, ...] = (0, 1),
    q_values: tuple[int, ...] = (0, 1),
) -> ArimaModel:
    """Grid-search (p, d, q) by AIC; returns the best fitted model."""
    best: ArimaModel | None = None
    for d in d_values:
        for p in p_values:
            for q in q_values:
                if p == 0 and q == 0 and d == 0:
                    continue
                try:
                    model = fit_arima(series, ArimaOrder(p, d, q))
                except ValueError:
                    continue
                if best is None or model.aic < best.aic:
                    best = model
    if best is None:
        raise ValueError("series too short for any candidate ARIMA order")
    return best
