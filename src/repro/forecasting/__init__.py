"""Workload prediction substrate (Section VI).

The paper forecasts per-class task arrival rates with an ARIMA model.  No
time-series library is assumed: :mod:`repro.forecasting.arima` implements
ARIMA(p, d, q) from scratch (differencing + conditional-sum-of-squares fit),
and :mod:`repro.forecasting.predictors` wraps it — along with naive, moving
average, EWMA and Holt baselines — behind a streaming ``update/forecast``
interface the controller consumes.
"""

from repro.forecasting.arima import ArimaModel, ArimaOrder, fit_arima, select_order_aic
from repro.forecasting.predictors import (
    Predictor,
    NaivePredictor,
    MovingAveragePredictor,
    EwmaPredictor,
    HoltPredictor,
    ArimaPredictor,
    FallbackChainPredictor,
    make_predictor,
)
from repro.forecasting.seasonal import SeasonalNaivePredictor, SeasonalEwmaPredictor
from repro.forecasting.evaluation import ForecastScore, rolling_origin_evaluation

__all__ = [
    "ArimaModel",
    "ArimaOrder",
    "fit_arima",
    "select_order_aic",
    "Predictor",
    "NaivePredictor",
    "MovingAveragePredictor",
    "EwmaPredictor",
    "HoltPredictor",
    "ArimaPredictor",
    "FallbackChainPredictor",
    "SeasonalNaivePredictor",
    "SeasonalEwmaPredictor",
    "make_predictor",
    "ForecastScore",
    "rolling_origin_evaluation",
]
