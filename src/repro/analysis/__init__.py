"""Figure/table reproduction helpers and ASCII rendering."""

from repro.analysis.figures import (
    FigureData,
    fig_demand_series,
    fig_machine_census,
    fig_delay_cdf,
    fig_duration_cdf,
    fig_task_sizes,
    fig_energy_curves,
    fig_classification,
    fig_arrival_rates,
    fig_active_servers,
    fig_energy_comparison,
)
from repro.analysis.report import ascii_table, ascii_series, format_cdf_rows
from repro.analysis.report_builder import build_report
from repro.analysis.svg import BarChart, LineChart
from repro.analysis.figure_files import render_policy_figures, render_trace_figures

__all__ = [
    "FigureData",
    "fig_demand_series",
    "fig_machine_census",
    "fig_delay_cdf",
    "fig_duration_cdf",
    "fig_task_sizes",
    "fig_energy_curves",
    "fig_classification",
    "fig_arrival_rates",
    "fig_active_servers",
    "fig_energy_comparison",
    "ascii_table",
    "ascii_series",
    "format_cdf_rows",
    "build_report",
    "BarChart",
    "LineChart",
    "render_policy_figures",
    "render_trace_figures",
]
