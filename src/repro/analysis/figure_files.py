"""Write the paper's figures as SVG files.

``render_trace_figures`` covers the Section III characterization
(Figs. 1-2, 6, 9, 19); ``render_policy_figures`` the evaluation
(Figs. 21-26).  Exposed on the CLI as ``python -m repro figures``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.analysis.svg import BarChart, LineChart
from repro.energy import TABLE2_MODELS
from repro.simulation import SimulationResult
from repro.trace import PriorityGroup, Trace
from repro.trace.statistics import duration_cdf_by_group, empirical_cdf
from repro.trace.workload import arrival_rate_series, demand_timeseries


def render_trace_figures(trace: Trace, out_dir: str | Path) -> list[Path]:
    """Figs. 1, 2, 6, 9, 19 from a trace; returns the written paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    times, cpu, memory = demand_timeseries(trace, 300.0)
    hours = times / 3600.0
    fig1 = LineChart(
        title="Fig. 1: Total CPU demand", x_label="time (h)",
        y_label="normalized machine units",
    ).add("cpu demand", hours, cpu)
    fig1.save(out / "fig01_cpu_demand.svg")
    written.append(out / "fig01_cpu_demand.svg")

    fig2 = LineChart(
        title="Fig. 2: Total memory demand", x_label="time (h)",
        y_label="normalized machine units",
    ).add("memory demand", hours, memory)
    fig2.save(out / "fig02_memory_demand.svg")
    written.append(out / "fig02_memory_demand.svg")

    fig6 = LineChart(
        title="Fig. 6: CDF of task duration", x_label="duration (s)",
        y_label="fraction of tasks", log_x=True,
    )
    for group, (x, f) in duration_cdf_by_group(trace).items():
        if x.size:
            fig6.add(group.name.lower(), x, f, step=True)
    fig6.save(out / "fig06_duration_cdf.svg")
    written.append(out / "fig06_duration_cdf.svg")

    fig9 = LineChart(
        title="Fig. 9: Machine energy consumption rate",
        x_label="cpu utilization", y_label="watts",
    )
    utilization = np.linspace(0.0, 1.0, 11)
    for model in TABLE2_MODELS:
        fig9.add(model.name, utilization,
                 np.array([model.power_at(u, u) for u in utilization]))
    fig9.save(out / "fig09_energy_curves.svg")
    written.append(out / "fig09_energy_curves.svg")

    rates = arrival_rate_series(trace, 300.0)
    num_bins = len(next(iter(rates.values())))
    rate_hours = (np.arange(num_bins) + 0.5) * 300.0 / 3600.0
    fig19 = LineChart(
        title="Fig. 19: Aggregated task arrival rates",
        x_label="time (h)", y_label="tasks per hour",
    )
    for group in PriorityGroup:
        fig19.add(group.name.lower(), rate_hours, rates[group] * 3600.0)
    fig19.save(out / "fig19_arrival_rates.svg")
    written.append(out / "fig19_arrival_rates.svg")

    return written


def render_policy_figures(
    results: dict[str, SimulationResult],
    horizon: float,
    out_dir: str | Path,
) -> list[Path]:
    """Figs. 21-26 from policy-comparison results; returns written paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    fig2122 = LineChart(
        title="Figs. 21-22: Active servers", x_label="time (h)",
        y_label="machines powered",
    )
    for policy, result in results.items():
        times, powered = result.metrics.machines_series()
        if times.size:
            fig2122.add(policy, times / 3600.0, powered, step=True)
    fig2122.save(out / "fig21_22_active_servers.svg")
    written.append(out / "fig21_22_active_servers.svg")

    for group, figure_name in (
        (PriorityGroup.GRATIS, "fig23_delay_gratis"),
        (PriorityGroup.OTHER, "fig24_delay_other"),
        (PriorityGroup.PRODUCTION, "fig25_delay_production"),
    ):
        chart = LineChart(
            title=f"{figure_name.split('_')[0].capitalize()}: scheduling delay "
            f"CDF ({group.name.lower()})",
            x_label="delay (s)", y_label="fraction of tasks", log_x=True,
        )
        for policy, result in results.items():
            delays = result.metrics.delays_by_group(include_unscheduled_at=horizon)[group]
            # log axis: clamp instant placements to 1 second.
            x, f = empirical_cdf(np.maximum(np.asarray(delays), 1.0))
            if x.size:
                chart.add(policy, x, f, step=True)
        path = out / f"{figure_name}.svg"
        chart.save(path)
        written.append(path)

    fig26 = BarChart(title="Fig. 26: Total energy consumption", y_label="kWh")
    for policy, result in results.items():
        fig26.add(policy, result.energy_kwh)
    fig26.save(out / "fig26_total_energy.svg")
    written.append(out / "fig26_total_energy.svg")

    return written
