"""Plain-text rendering of figure/table data.

Benches print through these helpers so their output reads like the paper's
tables: fixed-width columns, explicit units, no plotting dependencies.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def ascii_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Render rows as a fixed-width table."""
    formatted_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in formatted_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _format_cell(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3g}"
        return f"{cell:.4g}"
    return str(cell)


def ascii_series(
    times: np.ndarray,
    values: np.ndarray,
    width: int = 60,
    height: int = 12,
    label: str = "",
) -> str:
    """A small ASCII line chart, for eyeballing time series in bench output."""
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.size == 0 or values.size == 0:
        return f"{label}: (empty series)"
    # Downsample to the target width by bin means.
    bins = np.array_split(values, min(width, values.size))
    sampled = np.array([b.mean() for b in bins])
    low, high = float(sampled.min()), float(sampled.max())
    span = high - low or 1.0
    rows = []
    for level in range(height, 0, -1):
        threshold = low + span * (level - 0.5) / height
        row = "".join("#" if v >= threshold else " " for v in sampled)
        rows.append(row)
    lines = []
    if label:
        lines.append(f"{label}  [min={low:.4g}, max={high:.4g}]")
    lines.extend(rows)
    lines.append("-" * len(sampled))
    lines.append(f"t: {times[0]:.0f}s .. {times[-1]:.0f}s")
    return "\n".join(lines)


def format_cdf_rows(
    values: np.ndarray, points: Sequence[float], unit: str = "s"
) -> list[tuple[str, float]]:
    """CDF evaluated at chosen points as (label, fraction) rows."""
    values = np.sort(np.asarray(values, dtype=float))
    rows = []
    for point in points:
        if values.size == 0:
            fraction = float("nan")
        else:
            fraction = float(np.searchsorted(values, point, side="right")) / values.size
        rows.append((f"<= {point:g}{unit}", fraction))
    return rows
