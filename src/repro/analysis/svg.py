"""Dependency-free SVG charts.

matplotlib is unavailable in many offline environments, so figure files
are rendered with a small hand-rolled SVG writer: multi-series line
charts (linear or log10 x), step charts and grouped bar charts — enough
for every figure in the paper.  Output is plain SVG 1.1, viewable in any
browser.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

#: A colorblind-safe categorical palette (Okabe-Ito).
PALETTE = (
    "#0072B2",  # blue
    "#D55E00",  # vermillion
    "#009E73",  # green
    "#CC79A7",  # purple
    "#E69F00",  # orange
    "#56B4E9",  # sky
    "#F0E442",  # yellow
    "#000000",  # black
)


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _nice_ticks(low: float, high: float, count: int = 5) -> list[float]:
    """Round tick positions covering [low, high]."""
    if high <= low:
        high = low + 1.0
    span = high - low
    raw_step = span / max(count - 1, 1)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for mult in (1, 2, 2.5, 5, 10):
        step = mult * magnitude
        if span / step <= count:
            break
    start = math.floor(low / step) * step
    ticks = []
    tick = start
    while tick <= high + step * 1e-9:
        if tick >= low - step * 1e-9:
            ticks.append(round(tick, 10))
        tick += step
    return ticks or [low, high]


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 10000 or abs(value) < 0.01:
        return f"{value:.0e}"
    if abs(value) >= 100:
        return f"{value:.0f}"
    if value == int(value):
        return str(int(value))
    return f"{value:.2g}"


@dataclass
class Series:
    """One named line on a chart."""

    name: str
    x: np.ndarray
    y: np.ndarray
    color: str = ""
    step: bool = False

    def __post_init__(self) -> None:
        self.x = np.asarray(self.x, dtype=float)
        self.y = np.asarray(self.y, dtype=float)
        if self.x.shape != self.y.shape:
            raise ValueError(f"series {self.name!r}: x and y must align")


@dataclass
class LineChart:
    """A multi-series line/step chart with axes, ticks and a legend."""

    title: str
    x_label: str = ""
    y_label: str = ""
    width: int = 640
    height: int = 400
    log_x: bool = False
    series: list[Series] = field(default_factory=list)

    #: Plot-area margins: left, top, right, bottom.
    _margins: tuple[int, int, int, int] = (64, 40, 150, 48)

    def add(self, name: str, x, y, step: bool = False) -> "LineChart":
        color = PALETTE[len(self.series) % len(PALETTE)]
        self.series.append(Series(name=name, x=np.asarray(x), y=np.asarray(y),
                                  color=color, step=step))
        return self

    # ------------------------------------------------------------ rendering

    def _domain(self) -> tuple[float, float, float, float]:
        xs = np.concatenate([s.x for s in self.series if s.x.size])
        ys = np.concatenate([s.y for s in self.series if s.y.size])
        if self.log_x:
            xs = xs[xs > 0]
            if xs.size == 0:
                raise ValueError("log_x chart needs positive x values")
            x_low, x_high = float(np.log10(xs.min())), float(np.log10(xs.max()))
            if x_high - x_low < 1e-9:
                x_high = x_low + 1.0
        else:
            x_low, x_high = float(xs.min()), float(xs.max())
            if x_high - x_low < 1e-9:
                x_high = x_low + 1.0
        y_low = min(float(ys.min()), 0.0)
        y_high = float(ys.max())
        if y_high - y_low < 1e-9:
            y_high = y_low + 1.0
        return x_low, x_high, y_low, y_high

    def _transforms(self):
        left, top, right, bottom = self._margins
        plot_w = self.width - left - right
        plot_h = self.height - top - bottom
        x_low, x_high, y_low, y_high = self._domain()

        def tx(x: float) -> float:
            value = math.log10(x) if self.log_x else x
            return left + (value - x_low) / (x_high - x_low) * plot_w

        def ty(y: float) -> float:
            return top + plot_h - (y - y_low) / (y_high - y_low) * plot_h

        return tx, ty, (x_low, x_high, y_low, y_high)

    def render(self) -> str:
        """Render to an SVG document string."""
        if not self.series:
            raise ValueError("chart has no series")
        left, top, right, bottom = self._margins
        tx, ty, (x_low, x_high, y_low, y_high) = self._transforms()
        parts: list[str] = []
        parts.append(
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}" '
            f'font-family="sans-serif">'
        )
        parts.append(f'<rect width="{self.width}" height="{self.height}" fill="white"/>')
        parts.append(
            f'<text x="{self.width / 2}" y="22" text-anchor="middle" '
            f'font-size="15" font-weight="bold">{_escape(self.title)}</text>'
        )

        # Axes frame.
        plot_right = self.width - right
        plot_bottom = self.height - bottom
        parts.append(
            f'<rect x="{left}" y="{top}" width="{plot_right - left}" '
            f'height="{plot_bottom - top}" fill="none" stroke="#888"/>'
        )

        # X ticks.
        if self.log_x:
            exponents = range(math.floor(x_low), math.ceil(x_high) + 1)
            x_ticks = [10.0 ** e for e in exponents]
        else:
            x_ticks = _nice_ticks(x_low, x_high)
        for tick in x_ticks:
            px = tx(tick)
            if px < left - 1 or px > plot_right + 1:
                continue
            parts.append(
                f'<line x1="{px:.1f}" y1="{plot_bottom}" x2="{px:.1f}" '
                f'y2="{plot_bottom + 5}" stroke="#555"/>'
            )
            parts.append(
                f'<text x="{px:.1f}" y="{plot_bottom + 18}" text-anchor="middle" '
                f'font-size="11">{_format_tick(tick)}</text>'
            )
            parts.append(
                f'<line x1="{px:.1f}" y1="{top}" x2="{px:.1f}" y2="{plot_bottom}" '
                f'stroke="#eee"/>'
            )

        # Y ticks.
        for tick in _nice_ticks(y_low, y_high):
            py = ty(tick)
            if py < top - 1 or py > plot_bottom + 1:
                continue
            parts.append(
                f'<line x1="{left - 5}" y1="{py:.1f}" x2="{left}" y2="{py:.1f}" '
                f'stroke="#555"/>'
            )
            parts.append(
                f'<text x="{left - 8}" y="{py + 4:.1f}" text-anchor="end" '
                f'font-size="11">{_format_tick(tick)}</text>'
            )
            parts.append(
                f'<line x1="{left}" y1="{py:.1f}" x2="{plot_right}" y2="{py:.1f}" '
                f'stroke="#eee"/>'
            )

        # Axis labels.
        if self.x_label:
            parts.append(
                f'<text x="{(left + plot_right) / 2}" y="{self.height - 10}" '
                f'text-anchor="middle" font-size="12">{_escape(self.x_label)}</text>'
            )
        if self.y_label:
            cy = (top + plot_bottom) / 2
            parts.append(
                f'<text x="16" y="{cy}" text-anchor="middle" font-size="12" '
                f'transform="rotate(-90 16 {cy})">{_escape(self.y_label)}</text>'
            )

        # Series.
        for series in self.series:
            if series.x.size == 0:
                continue
            if self.log_x:
                mask = series.x > 0
                xs, ys = series.x[mask], series.y[mask]
            else:
                xs, ys = series.x, series.y
            points: list[str] = []
            previous_y = None
            for x, y in zip(xs, ys):
                px, py = tx(float(x)), ty(float(y))
                if series.step and previous_y is not None:
                    points.append(f"{px:.1f},{previous_y:.1f}")
                points.append(f"{px:.1f},{py:.1f}")
                previous_y = py
            parts.append(
                f'<polyline fill="none" stroke="{series.color}" stroke-width="1.8" '
                f'points="{" ".join(points)}"/>'
            )

        # Legend.
        legend_x = plot_right + 10
        for i, series in enumerate(self.series):
            ly = top + 14 + i * 18
            parts.append(
                f'<line x1="{legend_x}" y1="{ly - 4}" x2="{legend_x + 18}" '
                f'y2="{ly - 4}" stroke="{series.color}" stroke-width="2.5"/>'
            )
            parts.append(
                f'<text x="{legend_x + 24}" y="{ly}" font-size="11">'
                f"{_escape(series.name)}</text>"
            )

        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path) -> None:
        from pathlib import Path

        Path(path).write_text(self.render())


@dataclass
class BarChart:
    """A simple grouped/vertical bar chart."""

    title: str
    y_label: str = ""
    width: int = 560
    height: int = 360
    labels: list[str] = field(default_factory=list)
    values: list[float] = field(default_factory=list)
    colors: list[str] = field(default_factory=list)

    def add(self, label: str, value: float) -> "BarChart":
        self.labels.append(label)
        self.values.append(float(value))
        self.colors.append(PALETTE[len(self.colors) % len(PALETTE)])
        return self

    def render(self) -> str:
        if not self.values:
            raise ValueError("bar chart has no bars")
        left, top, right, bottom = 64, 40, 20, 56
        plot_w = self.width - left - right
        plot_h = self.height - top - bottom
        y_high = max(max(self.values), 1e-9)
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}" '
            f'font-family="sans-serif">',
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>',
            f'<text x="{self.width / 2}" y="22" text-anchor="middle" '
            f'font-size="15" font-weight="bold">{_escape(self.title)}</text>',
        ]
        for tick in _nice_ticks(0.0, y_high):
            py = top + plot_h - tick / y_high * plot_h
            parts.append(
                f'<line x1="{left}" y1="{py:.1f}" x2="{self.width - right}" '
                f'y2="{py:.1f}" stroke="#eee"/>'
            )
            parts.append(
                f'<text x="{left - 8}" y="{py + 4:.1f}" text-anchor="end" '
                f'font-size="11">{_format_tick(tick)}</text>'
            )
        n = len(self.values)
        slot = plot_w / n
        bar_w = slot * 0.6
        for i, (label, value, color) in enumerate(
            zip(self.labels, self.values, self.colors)
        ):
            x = left + i * slot + (slot - bar_w) / 2
            h = value / y_high * plot_h
            y = top + plot_h - h
            parts.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_w:.1f}" '
                f'height="{h:.1f}" fill="{color}"/>'
            )
            parts.append(
                f'<text x="{x + bar_w / 2:.1f}" y="{top + plot_h + 16}" '
                f'text-anchor="middle" font-size="11">{_escape(label)}</text>'
            )
            parts.append(
                f'<text x="{x + bar_w / 2:.1f}" y="{y - 4:.1f}" '
                f'text-anchor="middle" font-size="10">{_format_tick(value)}</text>'
            )
        if self.y_label:
            cy = top + plot_h / 2
            parts.append(
                f'<text x="16" y="{cy}" text-anchor="middle" font-size="12" '
                f'transform="rotate(-90 16 {cy})">{_escape(self.y_label)}</text>'
            )
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path) -> None:
        from pathlib import Path

        Path(path).write_text(self.render())
