"""One-call markdown reproduction report.

``build_report`` runs the full evaluation pipeline on a trace — Section III
characterization, classification, the three-policy comparison — and emits a
self-contained markdown document mirroring EXPERIMENTS.md's structure.
Exposed on the CLI as ``python -m repro report``.
"""

from __future__ import annotations

import io

import numpy as np

from repro.analysis.figures import (
    fig_energy_comparison,
    fig_task_sizes,
)
from repro.simulation import HarmonyConfig, SimulationResult, run_policy_comparison
from repro.simulation.harmony import energy_savings
from repro.trace import PriorityGroup, Trace, trace_summary, validate_trace
from repro.trace.statistics import cdf_at


def _markdown_table(headers: list[str], rows: list[list]) -> str:
    out = io.StringIO()
    out.write("| " + " | ".join(headers) + " |\n")
    out.write("|" + "|".join("---" for _ in headers) + "|\n")
    for row in rows:
        out.write("| " + " | ".join(str(c) for c in row) + " |\n")
    return out.getvalue()


def build_report(
    trace: Trace,
    config: HarmonyConfig | None = None,
    results: dict[str, SimulationResult] | None = None,
    policies: tuple[str, ...] = ("baseline", "cbp", "cbs"),
) -> str:
    """Run the evaluation on ``trace`` and return a markdown report.

    Pass pre-computed ``results`` to skip re-running the simulations.
    """
    config = config or HarmonyConfig()
    if results is None:
        results = run_policy_comparison(trace, config, policies=policies)

    out = io.StringIO()
    out.write("# HARMONY reproduction report\n\n")

    summary = trace_summary(trace)
    out.write("## Workload (Section III)\n\n")
    out.write(
        _markdown_table(
            ["metric", "value"],
            [[k, v] for k, v in summary.items()],
        )
    )

    out.write("\n### Calibration vs the paper's marginals\n\n")
    report = validate_trace(trace)
    out.write(
        _markdown_table(
            ["check", "target", "measured", "status"],
            [check.row() for check in report.checks],
        )
    )

    out.write("\n### Task sizes (Fig. 7)\n\n")
    sizes = fig_task_sizes(trace)
    out.write(
        _markdown_table(
            ["group", "tasks", "span (orders)", "cpu-mem corr", "modal share"],
            [
                [r["group"], r["num_tasks"], f"{r['size_span_orders']:.1f}",
                 f"{r['cpu_memory_correlation']:+.2f}", f"{r['modal_fraction']:.0%}"]
                for r in sizes.rows
            ],
        )
    )

    out.write("\n## Policy comparison (Figs. 21-26)\n\n")
    savings = energy_savings(results) if "baseline" in results else {}
    rows = []
    for policy, result in results.items():
        rows.append(
            [
                policy,
                f"{result.energy_kwh:.1f}",
                f"{result.total_cost:.2f}",
                f"{result.metrics.mean_active_machines():.1f}",
                f"{result.metrics.mean_delay(include_unscheduled_at=trace.horizon):.1f}",
                result.metrics.num_unscheduled,
                f"{savings.get(policy, 0.0):+.1%}" if savings else "-",
            ]
        )
    out.write(
        _markdown_table(
            ["policy", "kWh", "total $", "mean machines", "mean delay (s)",
             "unscheduled", "vs baseline"],
            rows,
        )
    )

    out.write("\n### Scheduling delay CDFs (Figs. 23-25)\n\n")
    points = [1.0, 60.0, 300.0, 1800.0]
    for policy, result in results.items():
        delays = result.metrics.delays_by_group(include_unscheduled_at=trace.horizon)
        out.write(f"\n**{policy}**\n\n")
        rows = []
        for group in PriorityGroup:
            fractions = cdf_at(np.asarray(delays[group]), points)
            rows.append(
                [group.name.lower()]
                + [f"{frac:.2f}" if frac == frac else "-" for frac in fractions]
            )
        out.write(
            _markdown_table(
                ["group"] + [f"<= {p:g}s" for p in points],
                rows,
            )
        )

    out.write("\n## Energy (Fig. 26)\n\n")
    energy = fig_energy_comparison(results)
    out.write(
        _markdown_table(
            ["policy", "kWh", "energy $", "switch $", "total $", "vs baseline"],
            [
                [
                    r["policy"],
                    f"{r['energy_kwh']:.1f}",
                    f"{r['energy_cost']:.2f}",
                    f"{r['switch_cost']:.2f}",
                    f"{r['total_cost']:.2f}",
                    f"{r.get('savings_vs_baseline', 0.0):+.1%}",
                ]
                for r in energy.rows
            ],
        )
    )
    out.write("\n")
    return out.getvalue()
