"""Per-figure data extraction.

Each ``fig_*`` function returns a :class:`FigureData` whose ``series`` /
``rows`` carry exactly what the corresponding paper figure plots, so benches
and EXPERIMENTS.md consume one uniform shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.classification.classifier import TaskClassifier
from repro.energy.models import MachineModel
from repro.simulation.harmony import SimulationResult
from repro.trace.schema import Trace
from repro.trace.statistics import (
    duration_cdf_by_group,
    empirical_cdf,
    machine_census_table,
    size_scatter_by_group,
)
from repro.trace.workload import arrival_rate_series, demand_timeseries


@dataclass(frozen=True)
class FigureData:
    """Uniform figure payload: named series and/or table rows."""

    figure: str
    title: str
    series: dict[str, tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    rows: list[dict] = field(default_factory=list)
    notes: str = ""


def fig_demand_series(trace: Trace, bin_seconds: float = 300.0) -> tuple[FigureData, FigureData]:
    """Figs. 1-2: total CPU and memory demand over time."""
    times, cpu, memory = demand_timeseries(trace, bin_seconds)
    fig1 = FigureData(
        figure="fig1",
        title="Total CPU demand",
        series={"cpu_demand": (times, cpu)},
        notes="normalized machine units; includes pending tasks",
    )
    fig2 = FigureData(
        figure="fig2",
        title="Total memory demand",
        series={"memory_demand": (times, memory)},
    )
    return fig1, fig2


def fig_machine_census(trace: Trace) -> FigureData:
    """Fig. 5: machine heterogeneity (types, capacities, counts)."""
    return FigureData(
        figure="fig5",
        title="Machine heterogeneity in compute cluster",
        rows=machine_census_table(trace),
    )


def fig_delay_cdf(result: SimulationResult) -> FigureData:
    """Figs. 4 / 23-25: scheduling delay CDF per priority group."""
    series = {}
    delays = result.metrics.delays_by_group(include_unscheduled_at=result.horizon)
    for group, values in delays.items():
        x, f = empirical_cdf(values)
        series[group.name.lower()] = (x, f)
    return FigureData(
        figure="fig4",
        title=f"CDF of scheduling delay ({result.policy})",
        series=series,
    )


def fig_duration_cdf(trace: Trace) -> FigureData:
    """Fig. 6: task duration CDF per priority group."""
    series = {
        group.name.lower(): cdf
        for group, cdf in duration_cdf_by_group(trace).items()
    }
    return FigureData(figure="fig6", title="CDF of task duration", series=series)


def fig_task_sizes(trace: Trace) -> FigureData:
    """Fig. 7a-c: task size (cpu, memory) per priority group."""
    rows = []
    for group, scatter in size_scatter_by_group(trace).items():
        rows.append(
            {
                "group": group.name.lower(),
                "num_tasks": scatter.num_tasks,
                "cpu_min": float(scatter.cpu.min()) if scatter.num_tasks else 0.0,
                "cpu_max": float(scatter.cpu.max()) if scatter.num_tasks else 0.0,
                "size_span_orders": scatter.size_span_orders,
                "cpu_memory_correlation": scatter.cpu_memory_correlation,
                "modal_fraction": scatter.modal_fraction(0.0125, 0.0159),
            }
        )
    return FigureData(figure="fig7", title="Task size analysis", rows=rows)


def fig_energy_curves(
    models: tuple[MachineModel, ...], points: int = 11
) -> FigureData:
    """Fig. 9: power vs CPU utilization per machine model."""
    series = {}
    utilization = np.linspace(0.0, 1.0, points)
    for model in models:
        watts = np.array([model.power_at(u, u) for u in utilization])
        series[model.name] = (utilization, watts)
    return FigureData(
        figure="fig9",
        title="Machine energy consumption rate",
        series=series,
        notes="memory utilization tracks cpu utilization",
    )


def fig_classification(classifier: TaskClassifier) -> FigureData:
    """Figs. 10-18: per-class sizes, centroids and short/long split."""
    return FigureData(
        figure="fig10-18",
        title="Task classification results",
        rows=classifier.summary(),
    )


def fig_arrival_rates(trace: Trace, bin_seconds: float = 300.0) -> FigureData:
    """Fig. 19: aggregated task arrival rates per priority group."""
    rates = arrival_rate_series(trace, bin_seconds)
    num_bins = len(next(iter(rates.values())))
    times = (np.arange(num_bins) + 0.5) * bin_seconds
    return FigureData(
        figure="fig19",
        title="Aggregated task arrival rates",
        series={g.name.lower(): (times, r) for g, r in rates.items()},
    )


def fig_active_servers(result: SimulationResult) -> FigureData:
    """Figs. 21-22: active servers over time for one policy."""
    times, powered = result.metrics.machines_series()
    return FigureData(
        figure="fig21-22",
        title=f"Active servers ({result.policy})",
        series={"active_servers": (times, powered)},
    )


def fig_energy_comparison(results: dict[str, SimulationResult]) -> FigureData:
    """Fig. 26: total energy consumption per policy."""
    rows = [
        {
            "policy": policy,
            "energy_kwh": result.energy_kwh,
            "energy_cost": result.energy_cost,
            "switch_cost": result.switch_cost,
            "total_cost": result.total_cost,
        }
        for policy, result in results.items()
    ]
    baseline = next((r for p, r in results.items() if p == "baseline"), None)
    if baseline is not None and baseline.total_cost > 0:
        for row in rows:
            row["savings_vs_baseline"] = 1.0 - row["total_cost"] / baseline.total_cost
    return FigureData(figure="fig26", title="Total energy consumption", rows=rows)
