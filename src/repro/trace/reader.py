"""Trace persistence in a clusterdata-like CSV layout.

A saved trace is a directory with two files:

- ``machine_types.csv`` -- one row per platform type
  (platform_id, cpu_capacity, memory_capacity, count, name);
- ``task_events.csv`` -- one SUBMIT row per task, mirroring the columns of
  the public Google ``task_events`` table that the paper analyzes
  (timestamp, job_id, task_index, priority, scheduling_class, cpu_request,
  memory_request, duration, allowed_platforms).

plus a small ``meta.csv`` holding the horizon and free-form metadata.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

from repro.errors import TraceFieldCorrupt
from repro.trace.schema import MachineType, Task, Trace

_MACHINE_FIELDS = ("platform_id", "cpu_capacity", "memory_capacity", "count", "name")
_TASK_FIELDS = (
    "timestamp",
    "job_id",
    "task_index",
    "priority",
    "scheduling_class",
    "cpu_request",
    "memory_request",
    "duration",
    "allowed_platforms",
)


def save_tasks_csv(tasks: Iterable[Task], path: str | Path) -> int:
    """Write tasks as SUBMIT events; returns the number of rows written."""
    path = Path(path)
    count = 0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_TASK_FIELDS)
        for task in tasks:
            allowed = (
                "|".join(str(p) for p in sorted(task.allowed_platforms))
                if task.allowed_platforms is not None
                else ""
            )
            writer.writerow(
                [
                    f"{task.submit_time:.6f}",
                    task.job_id,
                    task.index,
                    task.priority,
                    task.scheduling_class,
                    # %g keeps *relative* precision for tiny requests, where
                    # fixed decimals would truncate (sizes span 3+ orders).
                    f"{task.cpu:.12g}",
                    f"{task.memory:.12g}",
                    f"{task.duration:.6f}",
                    allowed,
                ]
            )
            count += 1
    return count


def _parse_field(row: dict, column: str, cast, row_number: int):
    """Cast one CSV cell, raising a locatable error instead of a bare one."""
    value = row.get(column)
    if value is None:
        raise TraceFieldCorrupt(
            f"row {row_number}: missing cell for column {column!r}",
            row=row_number,
            column=column,
            value=None,
        )
    try:
        return cast(value)
    except (TypeError, ValueError) as exc:
        raise TraceFieldCorrupt(
            f"row {row_number}: column {column!r} has unparseable value {value!r}",
            row=row_number,
            column=column,
            value=value,
        ) from exc


def _parse_allowed_platforms(raw: str) -> frozenset[int] | None:
    raw = raw.strip()
    if not raw:
        return None
    return frozenset(int(p) for p in raw.split("|"))


def parse_task_row(row: dict, row_number: int) -> Task:
    """Build a :class:`Task` from one CSV row.

    Any malformed cell raises :class:`repro.errors.TraceFieldCorrupt`
    carrying the 1-based data ``row`` number, ``column`` name and the
    offending ``value``.
    """
    return Task(
        job_id=_parse_field(row, "job_id", int, row_number),
        index=_parse_field(row, "task_index", int, row_number),
        submit_time=_parse_field(row, "timestamp", float, row_number),
        duration=_parse_field(row, "duration", float, row_number),
        priority=_parse_field(row, "priority", int, row_number),
        scheduling_class=_parse_field(row, "scheduling_class", int, row_number),
        cpu=_parse_field(row, "cpu_request", float, row_number),
        memory=_parse_field(row, "memory_request", float, row_number),
        allowed_platforms=_parse_field(
            row, "allowed_platforms", _parse_allowed_platforms, row_number
        ),
    )


def load_tasks_csv(path: str | Path) -> list[Task]:
    """Read tasks written by :func:`save_tasks_csv`.

    A malformed cell raises :class:`repro.errors.TraceFieldCorrupt` (also a
    ``ValueError``) locating the row, column and offending value.  To load a
    dirty file without raising, sanitize it first with
    :func:`repro.trace.sanitize.sanitize_tasks_csv`.
    """
    path = Path(path)
    tasks: list[Task] = []
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        missing = set(_TASK_FIELDS) - set(reader.fieldnames or ())
        if missing:
            raise TraceFieldCorrupt(
                f"task csv {path} missing columns: {sorted(missing)}",
                row=0,
                column=",".join(sorted(missing)),
                value=None,
            )
        for row_number, row in enumerate(reader, start=1):
            tasks.append(parse_task_row(row, row_number))
    return tasks


def save_trace(trace: Trace, directory: str | Path) -> Path:
    """Persist a trace to ``directory`` (created if needed); returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    with (directory / "machine_types.csv").open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_MACHINE_FIELDS)
        for machine in trace.machine_types:
            writer.writerow(
                [
                    machine.platform_id,
                    f"{machine.cpu_capacity:.9f}",
                    f"{machine.memory_capacity:.9f}",
                    machine.count,
                    machine.name,
                ]
            )

    save_tasks_csv(trace.tasks, directory / "task_events.csv")

    with (directory / "meta.csv").open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["horizon", "metadata_json"])
        writer.writerow([f"{trace.horizon:.6f}", json.dumps(trace.metadata, default=str)])

    return directory


def load_machine_types_csv(path: str | Path) -> list[MachineType]:
    """Read the machine census written by :func:`save_trace`."""
    machine_types: list[MachineType] = []
    with Path(path).open(newline="") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            machine_types.append(
                MachineType(
                    platform_id=int(row["platform_id"]),
                    cpu_capacity=float(row["cpu_capacity"]),
                    memory_capacity=float(row["memory_capacity"]),
                    count=int(row["count"]),
                    name=row["name"],
                )
            )
    return machine_types


def load_meta_csv(path: str | Path) -> tuple[float, dict]:
    """Read the ``(horizon, metadata)`` pair written by :func:`save_trace`."""
    with Path(path).open(newline="") as handle:
        reader = csv.DictReader(handle)
        meta_row = next(reader)
    return float(meta_row["horizon"]), json.loads(meta_row["metadata_json"])


def load_trace(directory: str | Path) -> Trace:
    """Load a trace saved with :func:`save_trace`."""
    directory = Path(directory)
    machine_types = load_machine_types_csv(directory / "machine_types.csv")
    tasks = load_tasks_csv(directory / "task_events.csv")
    horizon, metadata = load_meta_csv(directory / "meta.csv")
    return Trace.from_tasks(machine_types, tasks, horizon=horizon, metadata=metadata)
