"""Trace persistence in a clusterdata-like CSV layout.

A saved trace is a directory with two files:

- ``machine_types.csv`` -- one row per platform type
  (platform_id, cpu_capacity, memory_capacity, count, name);
- ``task_events.csv`` -- one SUBMIT row per task, mirroring the columns of
  the public Google ``task_events`` table that the paper analyzes
  (timestamp, job_id, task_index, priority, scheduling_class, cpu_request,
  memory_request, duration, allowed_platforms).

plus a small ``meta.csv`` holding the horizon and free-form metadata.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

from repro.trace.schema import MachineType, Task, Trace

_MACHINE_FIELDS = ("platform_id", "cpu_capacity", "memory_capacity", "count", "name")
_TASK_FIELDS = (
    "timestamp",
    "job_id",
    "task_index",
    "priority",
    "scheduling_class",
    "cpu_request",
    "memory_request",
    "duration",
    "allowed_platforms",
)


def save_tasks_csv(tasks: Iterable[Task], path: str | Path) -> int:
    """Write tasks as SUBMIT events; returns the number of rows written."""
    path = Path(path)
    count = 0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_TASK_FIELDS)
        for task in tasks:
            allowed = (
                "|".join(str(p) for p in sorted(task.allowed_platforms))
                if task.allowed_platforms is not None
                else ""
            )
            writer.writerow(
                [
                    f"{task.submit_time:.6f}",
                    task.job_id,
                    task.index,
                    task.priority,
                    task.scheduling_class,
                    # %g keeps *relative* precision for tiny requests, where
                    # fixed decimals would truncate (sizes span 3+ orders).
                    f"{task.cpu:.12g}",
                    f"{task.memory:.12g}",
                    f"{task.duration:.6f}",
                    allowed,
                ]
            )
            count += 1
    return count


def load_tasks_csv(path: str | Path) -> list[Task]:
    """Read tasks written by :func:`save_tasks_csv`."""
    path = Path(path)
    tasks: list[Task] = []
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        missing = set(_TASK_FIELDS) - set(reader.fieldnames or ())
        if missing:
            raise ValueError(f"task csv {path} missing columns: {sorted(missing)}")
        for row in reader:
            allowed_raw = row["allowed_platforms"].strip()
            allowed = (
                frozenset(int(p) for p in allowed_raw.split("|")) if allowed_raw else None
            )
            tasks.append(
                Task(
                    job_id=int(row["job_id"]),
                    index=int(row["task_index"]),
                    submit_time=float(row["timestamp"]),
                    duration=float(row["duration"]),
                    priority=int(row["priority"]),
                    scheduling_class=int(row["scheduling_class"]),
                    cpu=float(row["cpu_request"]),
                    memory=float(row["memory_request"]),
                    allowed_platforms=allowed,
                )
            )
    return tasks


def save_trace(trace: Trace, directory: str | Path) -> Path:
    """Persist a trace to ``directory`` (created if needed); returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    with (directory / "machine_types.csv").open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_MACHINE_FIELDS)
        for machine in trace.machine_types:
            writer.writerow(
                [
                    machine.platform_id,
                    f"{machine.cpu_capacity:.9f}",
                    f"{machine.memory_capacity:.9f}",
                    machine.count,
                    machine.name,
                ]
            )

    save_tasks_csv(trace.tasks, directory / "task_events.csv")

    with (directory / "meta.csv").open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["horizon", "metadata_json"])
        writer.writerow([f"{trace.horizon:.6f}", json.dumps(trace.metadata, default=str)])

    return directory


def load_trace(directory: str | Path) -> Trace:
    """Load a trace saved with :func:`save_trace`."""
    directory = Path(directory)

    machine_types: list[MachineType] = []
    with (directory / "machine_types.csv").open(newline="") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            machine_types.append(
                MachineType(
                    platform_id=int(row["platform_id"]),
                    cpu_capacity=float(row["cpu_capacity"]),
                    memory_capacity=float(row["memory_capacity"]),
                    count=int(row["count"]),
                    name=row["name"],
                )
            )

    tasks = load_tasks_csv(directory / "task_events.csv")

    with (directory / "meta.csv").open(newline="") as handle:
        reader = csv.DictReader(handle)
        meta_row = next(reader)
    horizon = float(meta_row["horizon"])
    metadata = json.loads(meta_row["metadata_json"])

    return Trace.from_tasks(machine_types, tasks, horizon=horizon, metadata=metadata)
