"""Google-clusterdata-like trace substrate.

The paper analyzes the public Google cluster trace (Section III).  That trace
is a multi-gigabyte download unavailable offline, so this package provides a
statistically calibrated synthetic equivalent (see DESIGN.md, section 2) plus
the schema, I/O, timeline and statistics tooling the rest of HARMONY needs.
"""

from repro.trace.schema import (
    PriorityGroup,
    SchedulingClass,
    Task,
    Job,
    MachineType,
    Trace,
    PRIORITY_GROUPS,
    NUM_PRIORITIES,
)
from repro.trace.generator import (
    SyntheticTraceConfig,
    PriorityGroupProfile,
    TracePlan,
    generate_trace,
    google_like_machine_census,
    plan_from_params,
    plan_params,
    plan_trace,
    stream_trace,
)
from repro.trace.reader import save_trace, load_trace, save_tasks_csv, load_tasks_csv
from repro.trace.sanitize import (
    SanitizationReport,
    sanitize_tasks_csv,
    sanitize_trace,
)
from repro.trace.workload import (
    ArrivalSeries,
    bin_arrivals,
    arrival_rate_series,
    demand_timeseries,
    pending_running_demand,
)
from repro.trace.statistics import (
    empirical_cdf,
    duration_cdf_by_group,
    size_scatter_by_group,
    machine_census_table,
    trace_summary,
)
from repro.trace.validation import (
    CalibrationCheck,
    CalibrationReport,
    validate_trace,
)

__all__ = [
    "PriorityGroup",
    "SchedulingClass",
    "Task",
    "Job",
    "MachineType",
    "Trace",
    "PRIORITY_GROUPS",
    "NUM_PRIORITIES",
    "SyntheticTraceConfig",
    "PriorityGroupProfile",
    "TracePlan",
    "generate_trace",
    "google_like_machine_census",
    "plan_from_params",
    "plan_params",
    "plan_trace",
    "stream_trace",
    "save_trace",
    "load_trace",
    "save_tasks_csv",
    "load_tasks_csv",
    "SanitizationReport",
    "sanitize_tasks_csv",
    "sanitize_trace",
    "ArrivalSeries",
    "bin_arrivals",
    "arrival_rate_series",
    "demand_timeseries",
    "pending_running_demand",
    "empirical_cdf",
    "duration_cdf_by_group",
    "size_scatter_by_group",
    "machine_census_table",
    "trace_summary",
    "CalibrationCheck",
    "CalibrationReport",
    "validate_trace",
]
