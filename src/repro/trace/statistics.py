"""Trace analysis helpers reproducing the Section III characterization.

Each function returns plain numpy/dict data so benches can print the same
series the paper plots (duration CDFs, size scatters, machine census).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.schema import PriorityGroup, Task, Trace

#: A resource span at or below this is treated as zero variance: requests
#: are normalized to [0, 1], so anything smaller than 1e-12 is numerical
#: noise, and exact float equality against 0.0 would miss it.
_DEGENERATE_SPAN = 1e-12


def empirical_cdf(values: np.ndarray | list[float]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of a sample.

    Returns ``(x, F)`` where ``F[i]`` is the fraction of the sample that is
    ``<= x[i]``; ``x`` is the sorted sample.
    """
    array = np.sort(np.asarray(values, dtype=float))
    if array.size == 0:
        return np.array([]), np.array([])
    fractions = np.arange(1, array.size + 1) / array.size
    return array, fractions


def cdf_at(values: np.ndarray | list[float], points: list[float]) -> list[float]:
    """CDF evaluated at specific points (for table-style reporting)."""
    array = np.sort(np.asarray(values, dtype=float))
    if array.size == 0:
        return [float("nan")] * len(points)
    return [float(np.searchsorted(array, p, side="right")) / array.size for p in points]


def duration_cdf_by_group(
    trace: Trace,
) -> dict[PriorityGroup, tuple[np.ndarray, np.ndarray]]:
    """Per-priority-group task duration CDFs (Fig. 6)."""
    return {
        group: empirical_cdf([t.duration for t in trace.tasks_in_group(group)])
        for group in PriorityGroup
    }


@dataclass(frozen=True)
class SizeScatter:
    """Task-size summary for one priority group (one panel of Fig. 7)."""

    group: PriorityGroup
    cpu: np.ndarray
    memory: np.ndarray

    @property
    def num_tasks(self) -> int:
        return self.cpu.size

    @property
    def size_span_orders(self) -> float:
        """log10 ratio of the largest to smallest task CPU request."""
        if self.cpu.size == 0:
            return 0.0
        return float(np.log10(self.cpu.max() / self.cpu.min()))

    @property
    def cpu_memory_correlation(self) -> float:
        """Pearson correlation between CPU and memory requests.

        Degenerate samples — fewer than two tasks, or zero variance in
        either resource (every task the same size) — have no defined
        correlation; return 0.0 instead of letting ``np.corrcoef`` emit
        NaN (and a divide warning) into calibration reports.
        """
        if self.cpu.size < 2:
            return 0.0
        if (
            float(np.ptp(self.cpu)) <= _DEGENERATE_SPAN
            or float(np.ptp(self.memory)) <= _DEGENERATE_SPAN
        ):
            return 0.0
        with np.errstate(invalid="ignore", divide="ignore"):
            correlation = float(np.corrcoef(self.cpu, self.memory)[0, 1])
        return correlation if np.isfinite(correlation) else 0.0

    def modal_fraction(self, cpu: float, memory: float, tol: float = 1e-9) -> float:
        """Fraction of tasks sitting exactly at a modal (cpu, memory) point."""
        if self.cpu.size == 0:
            return 0.0
        at_mode = (np.abs(self.cpu - cpu) < tol) & (np.abs(self.memory - memory) < tol)
        return float(at_mode.mean())


def size_scatter_by_group(trace: Trace) -> dict[PriorityGroup, SizeScatter]:
    """Task sizes per priority group (Fig. 7a-c)."""
    result = {}
    for group in PriorityGroup:
        tasks = trace.tasks_in_group(group)
        result[group] = SizeScatter(
            group=group,
            cpu=np.array([t.cpu for t in tasks]),
            memory=np.array([t.memory for t in tasks]),
        )
    return result


def machine_census_table(trace: Trace) -> list[dict]:
    """Machine heterogeneity table (Fig. 5): one row per platform type."""
    total = trace.num_machines
    rows = []
    for machine in sorted(trace.machine_types, key=lambda m: -m.count):
        rows.append(
            {
                "platform_id": machine.platform_id,
                "name": machine.name,
                "cpu_capacity": machine.cpu_capacity,
                "memory_capacity": machine.memory_capacity,
                "count": machine.count,
                "share": machine.count / total if total else 0.0,
            }
        )
    return rows


def trace_summary(trace: Trace) -> dict:
    """One-look summary used by examples and reports."""
    durations = np.array([t.duration for t in trace.tasks])
    group_counts = {
        group.name.lower(): len(trace.tasks_in_group(group)) for group in PriorityGroup
    }
    return {
        "num_tasks": trace.num_tasks,
        "num_jobs": trace.num_jobs,
        "num_machines": trace.num_machines,
        "num_machine_types": len(trace.machine_types),
        "horizon_hours": trace.horizon / 3600.0,
        "group_counts": group_counts,
        "short_task_fraction": float((durations < 100.0).mean()) if durations.size else 0.0,
        "median_duration_s": float(np.median(durations)) if durations.size else 0.0,
        "max_duration_days": float(durations.max() / 86400.0) if durations.size else 0.0,
    }
