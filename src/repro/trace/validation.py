"""Trace calibration validation.

Checks a (synthetic or loaded) trace against the workload facts the paper
publishes in Section III, producing a structured report.  Benches use it to
assert the generator stays calibrated; users pointing the pipeline at their
own traces can use it to see how far their workload is from the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.schema import PriorityGroup, Trace
from repro.trace.statistics import size_scatter_by_group


@dataclass(frozen=True)
class CalibrationCheck:
    """One validated workload fact."""

    name: str
    target: str
    measured: float
    passed: bool

    def row(self) -> list:
        return [self.name, self.target, f"{self.measured:.3g}", "ok" if self.passed else "MISS"]


@dataclass(frozen=True)
class CalibrationReport:
    """All checks for one trace."""

    checks: tuple[CalibrationCheck, ...]

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def failures(self) -> list[CalibrationCheck]:
        return [check for check in self.checks if not check.passed]


def validate_trace(trace: Trace) -> CalibrationReport:
    """Validate a trace against the paper's Section III marginals.

    Always returns a report: a trace too small to measure anything (empty
    or single-task — e.g. everything else was quarantined by the
    sanitizer) yields a single failing minimum-sample check rather than a
    crash or a vacuously passing report.
    """
    if trace.num_tasks < 2:
        return CalibrationReport(
            checks=(
                CalibrationCheck(
                    name="minimum sample size",
                    target=">= 2 tasks",
                    measured=float(trace.num_tasks),
                    passed=False,
                ),
            )
        )
    checks: list[CalibrationCheck] = []
    durations = np.array([t.duration for t in trace.tasks])
    scatters = size_scatter_by_group(trace)

    short_fraction = float((durations < 100.0).mean()) if durations.size else 0.0
    checks.append(
        CalibrationCheck(
            name="short task fraction (<100 s)",
            target="> 0.5",
            measured=short_fraction,
            passed=short_fraction > 0.5,
        )
    )

    gratis = scatters[PriorityGroup.GRATIS]
    modal = gratis.modal_fraction(0.0125, 0.0159)
    checks.append(
        CalibrationCheck(
            name="gratis modal share at (0.0125, 0.0159)",
            # The paper reports 43%; job-level size sharing makes the
            # task-level share noisy on small traces.
            target="0.25 - 0.60",
            measured=modal,
            passed=0.25 <= modal <= 0.60,
        )
    )

    for group, scatter in scatters.items():
        if scatter.num_tasks < 20:
            continue
        # Size span is an extreme statistic (min/max): tasks share their
        # job's size, so groups with few jobs may simply not sample the
        # catalog tails.  Only judge it with a decent sample.
        if scatter.num_tasks >= 1000:
            checks.append(
                CalibrationCheck(
                    name=f"{group.name.lower()} size span (orders of magnitude)",
                    target=">= 1.5",
                    measured=scatter.size_span_orders,
                    passed=scatter.size_span_orders >= 1.5,
                )
            )
        correlation = scatter.cpu_memory_correlation
        checks.append(
            CalibrationCheck(
                name=f"{group.name.lower()} cpu-memory correlation",
                target="|r| < 0.7",
                measured=correlation,
                passed=bool(abs(correlation) < 0.7),
            )
        )

    group_durations = {
        group: np.array([t.duration for t in trace.tasks_in_group(group)])
        for group in PriorityGroup
    }
    if group_durations[PriorityGroup.PRODUCTION].size and group_durations[PriorityGroup.GRATIS].size:
        production_median = float(np.median(group_durations[PriorityGroup.PRODUCTION]))
        gratis_median = float(np.median(group_durations[PriorityGroup.GRATIS]))
        ratio = production_median / max(gratis_median, 1e-9)
        checks.append(
            CalibrationCheck(
                name="production/gratis median duration ratio",
                # Allow small-sample noise: at trace scale the ratio is
                # clearly > 1; tiny test traces can wobble.
                target="> 0.8",
                measured=ratio,
                passed=ratio > 0.8,
            )
        )

    counts = [len(trace.tasks_in_group(group)) for group in PriorityGroup]
    checks.append(
        CalibrationCheck(
            name="all priority groups populated",
            target="3 groups",
            measured=float(sum(1 for c in counts if c > 0)),
            passed=all(c > 0 for c in counts),
        )
    )

    census = sorted((m.count for m in trace.machine_types), reverse=True)
    total = sum(census)
    top_share = census[0] / total if total else 0.0
    checks.append(
        CalibrationCheck(
            name="largest machine-type share",
            target="0.40 - 0.65",
            measured=top_share,
            passed=0.40 <= top_share <= 0.65,
        )
    )

    return CalibrationReport(checks=tuple(checks))
