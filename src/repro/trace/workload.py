"""Workload timelines: arrival binning and demand time series.

These are the inputs the HARMONY pipeline consumes at run time:

- :func:`bin_arrivals` / :class:`ArrivalSeries` -- per-class arrival counts
  per control interval, feeding the ARIMA predictor (Section VI, Fig. 19);
- :func:`demand_timeseries` -- total requested CPU/memory of all tasks in
  the system over time (Figs. 1-2);
- :func:`pending_running_demand` -- instantaneous decomposition used by the
  simulator's metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Sequence

import numpy as np

from repro.trace.schema import PriorityGroup, Task, Trace


@dataclass(frozen=True)
class ArrivalSeries:
    """Arrival counts per (class key, time bin).

    Attributes
    ----------
    bin_seconds:
        Width of each time bin.
    edges:
        Bin edges, length ``num_bins + 1``.
    counts:
        Mapping from class key to an integer array of length ``num_bins``.
    """

    bin_seconds: float
    edges: np.ndarray
    counts: dict[Hashable, np.ndarray]

    @property
    def num_bins(self) -> int:
        return len(self.edges) - 1

    def rate(self, key: Hashable) -> np.ndarray:
        """Arrival rate (per second) series for one class."""
        return self.counts[key] / self.bin_seconds

    def total(self) -> np.ndarray:
        """Summed counts across all classes."""
        result = np.zeros(self.num_bins, dtype=float)
        for series in self.counts.values():
            result += series
        return result

    def keys(self) -> list[Hashable]:
        return list(self.counts.keys())


def bin_arrivals(
    tasks: Iterable[Task],
    horizon: float,
    bin_seconds: float,
    key: Callable[[Task], Hashable] | None = None,
) -> ArrivalSeries:
    """Count task arrivals per class per time bin.

    Parameters
    ----------
    key:
        Classifies each task; defaults to its priority group.
    """
    if bin_seconds <= 0:
        raise ValueError("bin_seconds must be positive")
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    key = key or (lambda task: task.priority_group)
    num_bins = int(np.ceil(horizon / bin_seconds))
    edges = np.arange(num_bins + 1, dtype=float) * bin_seconds
    counts: dict[Hashable, np.ndarray] = {}
    for task in tasks:
        k = key(task)
        if k not in counts:
            counts[k] = np.zeros(num_bins, dtype=float)
        idx = min(int(task.submit_time // bin_seconds), num_bins - 1)
        counts[k][idx] += 1
    return ArrivalSeries(bin_seconds=bin_seconds, edges=edges, counts=counts)


def arrival_rate_series(
    trace: Trace, bin_seconds: float = 300.0
) -> dict[PriorityGroup, np.ndarray]:
    """Per-priority-group arrival rates (tasks/second) over the trace (Fig. 19)."""
    series = bin_arrivals(trace.tasks, trace.horizon, bin_seconds)
    return {
        group: series.counts.get(group, np.zeros(series.num_bins)) / bin_seconds
        for group in PriorityGroup
    }


def demand_timeseries(
    trace: Trace, bin_seconds: float = 300.0
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Total requested (cpu, memory) of tasks alive per time bin (Figs. 1-2).

    A task contributes its request from ``submit_time`` until
    ``submit_time + duration`` — i.e. demand includes tasks waiting to be
    scheduled, matching the paper's definition ("including the tasks that
    are waiting to be scheduled").

    Returns
    -------
    (times, cpu_demand, memory_demand):
        ``times`` are bin midpoints; demands are in normalized machine units.
    """
    if bin_seconds <= 0:
        raise ValueError("bin_seconds must be positive")
    num_bins = int(np.ceil(trace.horizon / bin_seconds))
    cpu = np.zeros(num_bins + 1)
    mem = np.zeros(num_bins + 1)
    # Difference arrays: +demand at arrival bin, -demand after departure bin.
    for task in trace.tasks:
        start = min(int(task.submit_time // bin_seconds), num_bins - 1)
        end = min(int((task.submit_time + task.duration) // bin_seconds) + 1, num_bins)
        cpu[start] += task.cpu
        cpu[end] -= task.cpu
        mem[start] += task.memory
        mem[end] -= task.memory
    cpu_series = np.cumsum(cpu[:num_bins])
    mem_series = np.cumsum(mem[:num_bins])
    times = (np.arange(num_bins) + 0.5) * bin_seconds
    return times, cpu_series, mem_series


def pending_running_demand(
    tasks: Sequence[Task],
    schedule_times: dict[tuple[int, int], float],
    at: float,
) -> tuple[float, float]:
    """(pending, running) CPU demand at instant ``at``.

    ``schedule_times`` maps task uid to the time it started executing;
    missing entries mean the task is still pending (if it has arrived).
    """
    pending = 0.0
    running = 0.0
    for task in tasks:
        if task.submit_time > at:
            continue
        started = schedule_times.get(task.uid)
        if started is None:
            pending += task.cpu
        elif started <= at < started + task.duration:
            running += task.cpu
    return pending, running
