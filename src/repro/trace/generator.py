"""Statistically calibrated synthetic Google-cluster-trace generator.

The paper's analysis (Section III) and evaluation (Section IX) run on the
public Google clusterdata-2011 trace.  That trace is unavailable offline, so
this module generates a synthetic equivalent reproducing the marginals the
paper reports:

- **Machine census** (Fig. 5): 10 platform types; types 1 and 2 hold ~50% and
  ~30% of machines, types 3-4 ~1000 each (~8%), types 5-10 fewer than 100
  machines each; capacities normalized so the largest machine is 1.0.
- **Task-size heterogeneity** (Fig. 7): within each priority group, task size
  spans roughly three orders of magnitude; 43% of *gratis* tasks sit exactly
  at (cpu, mem) = (0.0125, 0.0159); large tasks are either CPU-intensive or
  memory-intensive with little cpu-mem correlation.
- **Duration bimodality** (Fig. 6): tasks are either short or long; more than
  50% run under 100 seconds; 90% of gratis/other durations fall below 10
  hours while production durations tail out to ~17 days.
- **Arrival dynamics** (Figs. 1-2, 19): per-group arrival rates fluctuate with
  a diurnal cycle plus random bursts; demand varies significantly over time.
- **Job structure**: tasks arrive grouped into jobs with a heavy-tailed job
  size distribution; tasks within a job share their resource request.

Every draw flows through a single :class:`numpy.random.Generator` seeded from
the config, so traces are fully reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.trace.schema import (
    MachineType,
    PriorityGroup,
    Task,
    Trace,
)

#: (share of the fleet, cpu capacity, memory capacity) for the ten platform
#: types of Fig. 5.  Shares for types 5-10 are each under 100/12000 machines.
_GOOGLE_CENSUS_SHAPE: tuple[tuple[float, float, float], ...] = (
    (0.530, 0.50, 0.50),
    (0.307, 0.50, 0.25),
    (0.083, 0.50, 0.75),
    (0.055, 1.00, 1.00),
    (0.008, 0.25, 0.25),
    (0.006, 0.50, 0.12),
    (0.004, 0.50, 0.03),
    (0.003, 0.50, 0.97),
    (0.003, 1.00, 0.50),
    (0.001, 0.25, 0.50),
)


def google_like_machine_census(total_machines: int = 1200) -> tuple[MachineType, ...]:
    """A 10-type machine census with the population shares of Fig. 5.

    Parameters
    ----------
    total_machines:
        Fleet size.  The paper's cluster has ~12,000 machines; the default is
        a 1/10 scale-down suitable for laptop-scale simulation (DESIGN.md
        section 5).
    """
    if total_machines < 10:
        raise ValueError(f"need at least 10 machines for 10 types, got {total_machines}")
    counts = [max(1, round(share * total_machines)) for share, _, _ in _GOOGLE_CENSUS_SHAPE]
    # Absorb rounding drift into the largest type so totals stay exact.
    counts[0] += total_machines - sum(counts)
    return tuple(
        MachineType(
            platform_id=i + 1,
            cpu_capacity=cpu,
            memory_capacity=mem,
            count=count,
            name=f"platform-{i + 1}",
        )
        for i, ((_, cpu, mem), count) in enumerate(zip(_GOOGLE_CENSUS_SHAPE, counts))
    )


@dataclass(frozen=True)
class PriorityGroupProfile:
    """Generative model for one priority group's tasks.

    Sizes are drawn from a three-part mixture: an atom at a fixed mode (the
    43% gratis spike the paper reports), a lognormal "body", and an
    "intensive" component that inflates exactly one of cpu/memory to create
    the CPU-intensive / memory-intensive wings of Fig. 7.  Durations come
    from a short/long lognormal mixture (Fig. 6).
    """

    group: PriorityGroup
    #: Mean job arrivals per hour at diurnal peak-free baseline.
    job_rate_per_hour: float
    #: Probability a task sits exactly at the modal size.
    mode_share: float
    mode_cpu: float
    mode_memory: float
    #: Lognormal body for sizes (natural-log parameters).
    size_log_mean: float
    size_log_sigma: float
    #: Probability a non-modal task is single-resource intensive.
    intensive_share: float
    #: Multiplier applied to the intensive resource (lognormal body * this).
    intensive_scale: float
    #: Short/long duration mixture.
    short_share: float
    short_log_mean: float
    short_log_sigma: float
    long_log_mean: float
    long_log_sigma: float
    max_duration: float
    #: Raw priorities within the group and their sampling weights.
    priorities: tuple[int, ...]
    priority_weights: tuple[float, ...]
    #: Multiplier on the memory body relative to CPU: normalized task
    #: memory requests run higher than CPU requests in the Google trace
    #: (the modal task itself asks 0.0159 mem vs 0.0125 cpu), which is what
    #: makes cpu-biased machine shapes (2:1 DL385s) a trap for
    #: heterogeneity-oblivious provisioning.
    memory_bias: float = 1.3

    def __post_init__(self) -> None:
        if len(self.priorities) != len(self.priority_weights):
            raise ValueError("priorities and priority_weights must align")
        for p in self.priorities:
            if PriorityGroup.from_priority(p) is not self.group:
                raise ValueError(f"priority {p} is not in group {self.group.name}")
        if not 0 <= self.mode_share <= 1:
            raise ValueError("mode_share must be in [0, 1]")
        if not 0 <= self.short_share <= 1:
            raise ValueError("short_share must be in [0, 1]")

    def mean_duration(self) -> float:
        """Analytic mean of the duration mixture (ignoring the cap)."""
        short_mean = math.exp(self.short_log_mean + self.short_log_sigma**2 / 2)
        long_mean = math.exp(self.long_log_mean + self.long_log_sigma**2 / 2)
        return self.short_share * short_mean + (1 - self.short_share) * long_mean

    def mean_cpu(self) -> float:
        """Approximate analytic mean CPU request of the size mixture."""
        body = math.exp(self.size_log_mean + self.size_log_sigma**2 / 2)
        intensive = min(1.0, body * self.intensive_scale)
        non_modal = (
            (1 - self.intensive_share) * body
            + self.intensive_share * 0.5 * (body + intensive)
        )
        return self.mode_share * self.mode_cpu + (1 - self.mode_share) * non_modal


def _default_profiles() -> tuple[PriorityGroupProfile, ...]:
    """Calibrated defaults for the three priority groups.

    Rates are expressed per hour and later rescaled to the configured load
    (see :meth:`SyntheticTraceConfig.scaled_profiles`).
    """
    gratis = PriorityGroupProfile(
        group=PriorityGroup.GRATIS,
        job_rate_per_hour=110.0,
        mode_share=0.43,
        mode_cpu=0.0125,
        mode_memory=0.0159,
        size_log_mean=math.log(0.018),
        size_log_sigma=0.95,
        intensive_share=0.08,
        intensive_scale=10.0,
        short_share=0.72,
        short_log_mean=math.log(18.0),
        short_log_sigma=1.0,
        long_log_mean=math.log(3600.0 * 1.5),
        long_log_sigma=1.1,
        max_duration=10 * 24 * 3600.0,
        priorities=(0, 1),
        priority_weights=(0.7, 0.3),
    )
    other = PriorityGroupProfile(
        group=PriorityGroup.OTHER,
        job_rate_per_hour=170.0,
        mode_share=0.18,
        mode_cpu=0.0125,
        mode_memory=0.0159,
        size_log_mean=math.log(0.022),
        size_log_sigma=1.05,
        intensive_share=0.10,
        intensive_scale=9.0,
        short_share=0.68,
        short_log_mean=math.log(28.0),
        short_log_sigma=1.05,
        long_log_mean=math.log(3600.0 * 2.0),
        long_log_sigma=1.15,
        max_duration=12 * 24 * 3600.0,
        priorities=(2, 4, 6, 8),
        priority_weights=(0.45, 0.35, 0.15, 0.05),
    )
    production = PriorityGroupProfile(
        group=PriorityGroup.PRODUCTION,
        job_rate_per_hour=45.0,
        mode_share=0.0,
        mode_cpu=0.0125,
        mode_memory=0.0159,
        size_log_mean=math.log(0.035),
        size_log_sigma=1.1,
        intensive_share=0.12,
        intensive_scale=7.0,
        short_share=0.55,
        short_log_mean=math.log(45.0),
        short_log_sigma=1.0,
        long_log_mean=math.log(3600.0 * 8.0),
        long_log_sigma=1.3,
        max_duration=17 * 24 * 3600.0,
        priorities=(9, 10, 11),
        priority_weights=(0.6, 0.3, 0.1),
    )
    return (gratis, other, production)


@dataclass(frozen=True)
class SyntheticTraceConfig:
    """Configuration for :func:`generate_trace`.

    Attributes
    ----------
    horizon_hours:
        Trace length.  The paper uses 29 days (696 h); the default 24 h keeps
        tests fast while benches use longer horizons.
    seed:
        Seed for the trace's private random generator.
    total_machines:
        Fleet size for the 10-type Google-like census.
    machine_types:
        Explicit census overriding ``total_machines`` when provided.
    load_factor:
        Target ratio of steady-state CPU demand to total fleet CPU capacity.
        Arrival rates are rescaled to hit this, so scaled-down fleets see the
        paper's traffic intensity.
    diurnal_amplitude:
        Relative amplitude of the 24 h sinusoidal arrival modulation.
    burst_rate_per_day / burst_magnitude / burst_duration_hours:
        Random arrival surges (flash crowds) layered on the diurnal cycle.
    constrained_fraction:
        Fraction of tasks carrying a placement constraint restricting them to
        a random subset of platforms (the "difficult to schedule" tasks of
        Section III-B).
    mean_job_tasks:
        Mean tasks per job; job sizes are heavy-tailed around this.
    """

    horizon_hours: float = 24.0
    seed: int = 0
    total_machines: int = 1200
    machine_types: tuple[MachineType, ...] | None = None
    profiles: tuple[PriorityGroupProfile, ...] = field(default_factory=_default_profiles)
    load_factor: float = 0.55
    diurnal_amplitude: float = 0.35
    weekly_amplitude: float = 0.10
    burst_rate_per_day: float = 2.0
    burst_magnitude: float = 1.8
    burst_duration_hours: float = 1.5
    constrained_fraction: float = 0.02
    #: Machine types placement constraints are drawn from.  Defaults to the
    #: trace's own census; pass the *simulated fleet's* machine types (via
    #: ``MachineModel.to_machine_type()``) when the trace will replay
    #: against a different fleet (e.g. Table II), so the "difficult to
    #: schedule" tasks of Section III-B stay meaningful there.  Only
    #: platforms that can actually host the task's size are ever chosen.
    constraint_platforms: tuple[MachineType, ...] | None = None
    mean_job_tasks: float = 6.0
    arrival_bin_seconds: float = 300.0

    def __post_init__(self) -> None:
        if self.horizon_hours <= 0:
            raise ValueError("horizon_hours must be positive")
        if not 0 < self.load_factor < 1.5:
            raise ValueError("load_factor must be in (0, 1.5)")
        if not 0 <= self.constrained_fraction < 1:
            raise ValueError("constrained_fraction must be in [0, 1)")
        if self.mean_job_tasks < 1:
            raise ValueError("mean_job_tasks must be >= 1")
        groups = [p.group for p in self.profiles]
        if sorted(groups) != sorted(set(groups)):
            raise ValueError("at most one profile per priority group")

    def census(self) -> tuple[MachineType, ...]:
        """The machine census used by this configuration."""
        if self.machine_types is not None:
            return self.machine_types
        return google_like_machine_census(self.total_machines)

    def scaled_profiles(self) -> tuple[PriorityGroupProfile, ...]:
        """Profiles with job rates rescaled to hit ``load_factor``.

        Steady-state CPU demand of group g is approximately
        ``job_rate * mean_job_tasks * mean_cpu * mean_duration`` (Little's
        law).  We scale all groups by a common factor so the sum matches
        ``load_factor * total_cpu_capacity``.
        """
        census = self.census()
        total_cpu = sum(m.cpu_capacity * m.count for m in census)
        demand = sum(
            (p.job_rate_per_hour / 3600.0)
            * self.mean_job_tasks
            * p.mean_cpu()
            * p.mean_duration()
            for p in self.profiles
        )
        if demand <= 0:
            raise ValueError("profiles generate no demand")
        scale = self.load_factor * total_cpu / demand
        return tuple(
            PriorityGroupProfile(
                **{
                    **{f: getattr(p, f) for f in p.__dataclass_fields__},
                    "job_rate_per_hour": p.job_rate_per_hour * scale,
                }
            )
            for p in self.profiles
        )


#: Users request resources on a coarse grid (fractions of cores, round MB),
#: which is why the trace shows strong modal sizes (43% of gratis tasks at
#: one point, Section III-D) and why K-means task classes end up with
#: "standard deviation much less than the mean" (Section IX-A).  The grid is
#: 1/8 of the gratis modal size, so the mode sits exactly on a grid point
#: while the body spreads over many cells and tiny tasks (the low end of the
#: paper's three-orders-of-magnitude span) remain representable.
_CPU_GRID = 0.0125 / 8
_MEMORY_GRID = 0.0159 / 8


def _quantize(value: float, step: float) -> float:
    """Snap a request to the user-facing grid (at least one step, at most 1)."""
    return float(min(max(round(value / step), 1) * step, 1.0))


#: Distinct request-size points per priority group.  Users pick from a
#: small effective menu of popular configurations (Reiss et al. observe the
#: trace's request values are discrete and heavily repeated — 43% of gratis
#: tasks share a single point), so task sizes form a Zipf-weighted catalog
#: rather than a continuous cloud.  This is also what makes the K-means
#: task classes tight ("standard deviation much less than the mean",
#: Section IX-A): most classes capture one or a few dominant points.
_SIZE_CATALOG_POINTS = 40
_SIZE_ZIPF_EXPONENT = 1.25


class _SizeCatalog:
    """A per-group catalog of discrete (cpu, memory) request points.

    CPU sizes sit on a stratified quantile ladder of the group's lognormal
    (so every seed covers the full multi-order-of-magnitude span the paper
    reports); memory is drawn independently per point (no cpu-memory
    correlation, Fig. 7); a random subset of points is single-resource
    intensive.  Popularity is Zipf over a random permutation, making the
    popular sizes independent of their magnitude.
    """

    def __init__(self, profile: PriorityGroupProfile, rng: np.random.Generator) -> None:
        from scipy import stats

        levels = np.linspace(0.005, 0.995, _SIZE_CATALOG_POINTS)
        cpu_quantiles = np.exp(
            profile.size_log_mean
            + profile.size_log_sigma * stats.norm.ppf(levels)
        )
        points: list[tuple[float, float]] = []
        for base_cpu in cpu_quantiles:
            cpu = float(base_cpu * rng.lognormal(0.0, 0.15))
            mem = float(
                rng.lognormal(
                    profile.size_log_mean + math.log(profile.memory_bias),
                    profile.size_log_sigma,
                )
            )
            if rng.random() < profile.intensive_share:
                # Large points are single-resource intensive (Fig. 7 wings).
                if rng.random() < 0.5:
                    cpu *= profile.intensive_scale
                else:
                    mem *= profile.intensive_scale
            points.append(
                (_quantize(cpu, _CPU_GRID), _quantize(mem, _MEMORY_GRID))
            )
        weights = 1.0 / np.arange(1, len(points) + 1) ** _SIZE_ZIPF_EXPONENT
        # Popularity independent of size.
        self.weights = np.asarray(rng.permutation(weights / weights.sum()))
        self.points = points

    def sample(self, rng: np.random.Generator) -> tuple[float, float]:
        index = int(rng.choice(len(self.points), p=self.weights))
        return self.points[index]


def _sample_size(
    rng: np.random.Generator,
    profile: PriorityGroupProfile,
    catalog: _SizeCatalog,
) -> tuple[float, float]:
    """Draw one (cpu, memory) request: the modal atom or a catalog point."""
    if rng.random() < profile.mode_share:
        return (profile.mode_cpu, profile.mode_memory)
    return catalog.sample(rng)


def _sample_duration(rng: np.random.Generator, profile: PriorityGroupProfile) -> float:
    """Draw one duration from the short/long mixture."""
    if rng.random() < profile.short_share:
        duration = rng.lognormal(profile.short_log_mean, profile.short_log_sigma)
    else:
        duration = rng.lognormal(profile.long_log_mean, profile.long_log_sigma)
    return float(np.clip(duration, 1.0, profile.max_duration))


def _sample_job_size(rng: np.random.Generator, mean_tasks: float) -> int:
    """Heavy-tailed job size: mostly singletons, occasionally large fan-outs."""
    if mean_tasks <= 1.0:
        return 1
    if rng.random() < 0.55:
        return 1
    # Geometric body plus a rare Pareto tail.
    if rng.random() < 0.95:
        body_mean = max(1.0, (mean_tasks - 0.55) / 0.45)
        return 1 + int(rng.geometric(1.0 / body_mean))
    return 1 + int(rng.pareto(1.5) * mean_tasks)


def _burst_windows(
    rng: np.random.Generator, config: SyntheticTraceConfig
) -> list[tuple[float, float, float]]:
    """Random (start, end, multiplier) arrival surges over the horizon."""
    horizon_s = config.horizon_hours * 3600.0
    expected = config.burst_rate_per_day * config.horizon_hours / 24.0
    num_bursts = int(rng.poisson(expected))
    windows = []
    for _ in range(num_bursts):
        start = float(rng.uniform(0.0, horizon_s))
        length = config.burst_duration_hours * 3600.0 * float(rng.uniform(0.5, 1.5))
        magnitude = config.burst_magnitude * float(rng.uniform(0.7, 1.3))
        windows.append((start, min(start + length, horizon_s), magnitude))
    return windows


def _rate_multiplier(
    t: float,
    config: SyntheticTraceConfig,
    bursts: list[tuple[float, float, float]],
) -> float:
    """Time-varying arrival modulation: diurnal * weekly * bursts."""
    day = 24 * 3600.0
    diurnal = 1.0 + config.diurnal_amplitude * math.sin(2 * math.pi * t / day)
    weekly = 1.0 + config.weekly_amplitude * math.sin(2 * math.pi * t / (7 * day))
    multiplier = diurnal * weekly
    for start, end, magnitude in bursts:
        if start <= t < end:
            multiplier *= magnitude
    return max(multiplier, 0.05)


def generate_trace(config: SyntheticTraceConfig | None = None) -> Trace:
    """Generate a synthetic trace calibrated to the paper's marginals.

    The generator walks the horizon in ``arrival_bin_seconds`` bins; in each
    bin it draws a Poisson number of job arrivals per priority group at the
    modulated rate, then materializes each job's tasks (shared resource
    request, jittered durations).

    ``load_factor`` is calibrated *empirically*: a first pass generates the
    trace with analytically scaled rates, measures the realized time-average
    CPU demand (durations clipped to the horizon), and a second pass rescales
    the arrival rates so the realized load matches the configuration — the
    analytic moments drift from reality through size quantization, the
    discrete size catalog and the memory calibration.
    """
    config = config or SyntheticTraceConfig()
    census = config.census()
    horizon_s = config.horizon_hours * 3600.0
    total_cpu = sum(m.cpu_capacity * m.count for m in census)

    profiles = config.scaled_profiles()

    def realized_load(task_list: list[Task]) -> float:
        """p90 of the binned CPU-demand series over fleet capacity.

        Long tasks accumulate through the window, so the demand series
        ramps; calibrating on the time-average would leave the busy end of
        the trace far above the configured load (and possibly above the
        fleet).  The 90th percentile pins the *sustained busy* level.
        """
        if not task_list:
            return 0.0
        bin_s = 600.0
        num_bins = int(math.ceil(horizon_s / bin_s))
        deltas = np.zeros(num_bins + 1)
        for t in task_list:
            start = min(int(t.submit_time // bin_s), num_bins - 1)
            end = min(int((t.submit_time + t.duration) // bin_s) + 1, num_bins)
            deltas[start] += t.cpu
            deltas[end] -= t.cpu
        series = np.cumsum(deltas[:num_bins])
        return float(np.percentile(series, 90)) / total_cpu

    tasks = _generate_tasks(config, census, profiles, horizon_s)
    # Iterate: heavy-tailed job sizes and durations make the realized load
    # of a single pass noisy, so one multiplicative correction is not
    # enough.  Each pass is deterministic given (seed, rates), so the loop
    # is reproducible.
    for _ in range(4):
        realized = realized_load(tasks)
        if realized <= 0:
            break
        error = abs(realized - config.load_factor) / config.load_factor
        if error < 0.08:
            break
        correction = float(np.clip(config.load_factor / realized, 0.33, 3.0))
        profiles = tuple(
            PriorityGroupProfile(
                **{
                    **{f: getattr(p, f) for f in p.__dataclass_fields__},
                    "job_rate_per_hour": p.job_rate_per_hour * correction,
                }
            )
            for p in profiles
        )
        tasks = _generate_tasks(config, census, profiles, horizon_s)

    tasks = _calibrate_memory_ratio(tasks, profiles, horizon_s)
    tasks.sort(key=lambda t: (t.submit_time, t.job_id, t.index))
    return Trace(
        machine_types=census,
        tasks=tuple(tasks),
        horizon=horizon_s,
        metadata={
            "generator": "repro.trace.generator",
            "seed": config.seed,
            "horizon_hours": config.horizon_hours,
            "load_factor": config.load_factor,
        },
    )


def _generate_tasks(
    config: SyntheticTraceConfig,
    census: tuple[MachineType, ...],
    profiles: tuple[PriorityGroupProfile, ...],
    horizon_s: float,
) -> list[Task]:
    """One full generation pass with the given (possibly rescaled) profiles."""
    return [
        task
        for bin_tasks in _iter_task_bins(config, census, profiles, horizon_s)
        for task in bin_tasks
    ]


def _iter_task_bins(
    config: SyntheticTraceConfig,
    census: tuple[MachineType, ...],
    profiles: tuple[PriorityGroupProfile, ...],
    horizon_s: float,
):
    """Yield each arrival bin's tasks, in generation order.

    The single shared generation loop: :func:`_generate_tasks` flattens it
    into the materialized list and :func:`stream_trace` consumes it bin by
    bin, so the two paths draw the exact same random variates in the exact
    same order from the one seeded generator.
    """
    rng = np.random.default_rng(config.seed)
    bursts = _burst_windows(rng, config)
    constraint_pool = config.constraint_platforms or census
    catalogs = {profile.group: _SizeCatalog(profile, rng) for profile in profiles}

    job_id = 0
    bin_s = config.arrival_bin_seconds
    num_bins = int(math.ceil(horizon_s / bin_s))

    for b in range(num_bins):
        bin_start = b * bin_s
        bin_end = min(bin_start + bin_s, horizon_s)
        width = bin_end - bin_start
        if width <= 0:
            continue
        bin_tasks: list[Task] = []
        multiplier = _rate_multiplier(bin_start + width / 2, config, bursts)
        for profile in profiles:
            lam = profile.job_rate_per_hour / 3600.0 * width * multiplier
            num_jobs = int(rng.poisson(lam))
            for _ in range(num_jobs):
                job_id += 1
                submit = float(rng.uniform(bin_start, bin_end))
                num_tasks = _sample_job_size(rng, config.mean_job_tasks)
                cpu, mem = _sample_size(rng, profile, catalogs[profile.group])
                base_duration = _sample_duration(rng, profile)
                priority = int(
                    rng.choice(profile.priorities, p=_normalized(profile.priority_weights))
                )
                sched_class = _scheduling_class_for(rng, profile.group)
                constrained = rng.random() < config.constrained_fraction
                allowed = None
                if constrained:
                    # Hard-to-schedule tasks: restricted to a couple of the
                    # platforms that can actually host them.
                    hosts = [
                        m.platform_id
                        for m in constraint_pool
                        if cpu <= m.cpu_capacity and mem <= m.memory_capacity
                    ]
                    if hosts:
                        k = int(rng.integers(1, min(3, len(hosts) + 1)))
                        allowed = frozenset(
                            int(p) for p in rng.choice(hosts, size=k, replace=False)
                        )
                for index in range(num_tasks):
                    duration = float(
                        np.clip(
                            base_duration * rng.lognormal(0.0, 0.25),
                            1.0,
                            profile.max_duration,
                        )
                    )
                    bin_tasks.append(
                        Task(
                            job_id=job_id,
                            index=index,
                            submit_time=submit,
                            duration=duration,
                            priority=priority,
                            scheduling_class=sched_class,
                            cpu=cpu,
                            memory=mem,
                            allowed_platforms=allowed,
                        )
                    )
        yield bin_tasks


def _calibrate_memory_ratio(
    tasks: list[Task], profiles: tuple[PriorityGroupProfile, ...], horizon_s: float
) -> list[Task]:
    """Pin the realized duration-weighted memory/cpu ratio.

    Zipf-popular discrete sizes make the realized resource mix extremely
    seed-sensitive (a couple of long, popular, large points dominate the
    duration-weighted totals), which would flip the evaluation between
    memory-bound and cpu-bound regimes per seed.  A uniform post-scale of
    non-modal memory requests sets the trace-wide ratio to the (task-count
    weighted) mean of the profiles' ``memory_bias`` exactly, preserving
    within-trace heterogeneity, cpu-memory independence and the exact
    modal point.
    """
    from dataclasses import replace

    if not tasks:
        return tasks
    target = sum(p.memory_bias for p in profiles) / len(profiles)
    modal_points = {(p.mode_cpu, p.mode_memory) for p in profiles}

    def p90_series(values_of) -> float:
        bin_s = 600.0
        num_bins = int(math.ceil(horizon_s / bin_s))
        deltas = np.zeros(num_bins + 1)
        for t in tasks:
            start = min(int(t.submit_time // bin_s), num_bins - 1)
            end = min(int((t.submit_time + t.duration) // bin_s) + 1, num_bins)
            value = values_of(t)
            deltas[start] += value
            deltas[end] -= value
        return float(np.percentile(np.cumsum(deltas[:num_bins]), 90))

    # Iterate: the modal atoms are exempt from scaling and p90 is not
    # linear in the scale, so one multiplicative step leaves residue.
    for _ in range(3):
        cpu_p90 = p90_series(lambda t: t.cpu)
        mem_p90 = p90_series(lambda t: t.memory)
        if cpu_p90 <= 0 or mem_p90 <= 0:
            break
        ratio = mem_p90 / cpu_p90
        if abs(ratio - target) / target < 0.05:
            break
        scale = float(np.clip(target / ratio, 0.25, 8.0))
        # No re-quantization: rounding small memories to the grid biases
        # the realized ratio low; calibration accuracy wins here.
        tasks = [
            t
            if (t.cpu, t.memory) in modal_points
            else replace(
                t, memory=float(np.clip(t.memory * scale, _MEMORY_GRID, 1.0))
            )
            for t in tasks
        ]
    return tasks


@dataclass(frozen=True)
class TracePlan:
    """Frozen calibration result for one ``(config)`` — the streaming recipe.

    :func:`generate_trace` interleaves generation passes with load and
    memory calibration; the streaming path splits that into a *planning*
    stage (:func:`plan_trace`, constant-memory statistics passes that
    reproduce the calibrated profiles and the memory-scale chain bit for
    bit) and a single *emission* pass (:func:`stream_trace`).  The plan is
    JSON-serializable (:func:`plan_params`) so a coordinator can calibrate
    once and ship the recipe to shard workers, which then pay only the one
    emission pass each.
    """

    #: Load-calibrated profiles (same values generate_trace converges to).
    profiles: tuple[PriorityGroupProfile, ...]
    #: Memory-calibration scale chain, applied sequentially (with clipping
    #: between steps) to non-modal tasks — the exact float operations
    #: :func:`_calibrate_memory_ratio` performs across its iterations.
    memory_scales: tuple[float, ...]


def _scaled_memory(
    cpu: float,
    memory: float,
    scales: tuple[float, ...],
    modal_points: frozenset[tuple[float, float]],
) -> float:
    """Replay the memory-calibration scale chain for one task.

    Mirrors :func:`_calibrate_memory_ratio` exactly: each iteration checks
    the task's *current* (cpu, memory) against the modal atoms before
    scaling, and clips after each multiplication — so the chain is applied
    step by step, not as one fused factor.
    """
    for scale in scales:
        if (cpu, memory) in modal_points:
            return memory
        memory = float(np.clip(memory * scale, _MEMORY_GRID, 1.0))
    return memory


def _demand_stats(
    config: SyntheticTraceConfig,
    census: tuple[MachineType, ...],
    profiles: tuple[PriorityGroupProfile, ...],
    horizon_s: float,
    memory_scales: tuple[float, ...] = (),
    modal_points: frozenset[tuple[float, float]] = frozenset(),
) -> tuple[float, float, int]:
    """One constant-memory generation pass -> (cpu_p90, mem_p90, task count).

    Accumulates the same 600 s binned delta arrays that ``realized_load``
    and ``p90_series`` build inside :func:`generate_trace`, walking tasks
    in generation order so the floating-point accumulation order — and
    therefore every percentile — is bit-identical to the materialized
    path's, without ever holding the task list.
    """
    bin_s = 600.0
    num_bins = int(math.ceil(horizon_s / bin_s))
    cpu_deltas = np.zeros(num_bins + 1)
    mem_deltas = np.zeros(num_bins + 1)
    count = 0
    for bin_tasks in _iter_task_bins(config, census, profiles, horizon_s):
        for t in bin_tasks:
            count += 1
            start = min(int(t.submit_time // bin_s), num_bins - 1)
            end = min(int((t.submit_time + t.duration) // bin_s) + 1, num_bins)
            cpu_deltas[start] += t.cpu
            cpu_deltas[end] -= t.cpu
            memory = _scaled_memory(t.cpu, t.memory, memory_scales, modal_points)
            mem_deltas[start] += memory
            mem_deltas[end] -= memory
    if count == 0:
        return 0.0, 0.0, 0
    cpu_p90 = float(np.percentile(np.cumsum(cpu_deltas[:num_bins]), 90))
    mem_p90 = float(np.percentile(np.cumsum(mem_deltas[:num_bins]), 90))
    return cpu_p90, mem_p90, count


def plan_trace(config: SyntheticTraceConfig | None = None) -> TracePlan:
    """Run the generator's calibration in constant memory.

    Reproduces :func:`generate_trace`'s load loop (up to four corrective
    rate rescalings on the p90 CPU demand) and memory loop (up to three
    non-modal memory rescalings on the p90 memory/cpu ratio) using
    statistics passes instead of materialized task lists.  The resulting
    :class:`TracePlan` drives :func:`stream_trace` to a stream that is
    bit-identical to ``generate_trace(config).tasks``.
    """
    config = config or SyntheticTraceConfig()
    census = config.census()
    horizon_s = config.horizon_hours * 3600.0
    total_cpu = sum(m.cpu_capacity * m.count for m in census)

    profiles = config.scaled_profiles()
    cpu_p90, mem_p90, count = _demand_stats(config, census, profiles, horizon_s)
    for _ in range(4):
        realized = (cpu_p90 / total_cpu) if count else 0.0
        if realized <= 0:
            break
        error = abs(realized - config.load_factor) / config.load_factor
        if error < 0.08:
            break
        correction = float(np.clip(config.load_factor / realized, 0.33, 3.0))
        profiles = tuple(
            PriorityGroupProfile(
                **{
                    **{f: getattr(p, f) for f in p.__dataclass_fields__},
                    "job_rate_per_hour": p.job_rate_per_hour * correction,
                }
            )
            for p in profiles
        )
        cpu_p90, mem_p90, count = _demand_stats(config, census, profiles, horizon_s)

    memory_scales: list[float] = []
    if count:
        target = sum(p.memory_bias for p in profiles) / len(profiles)
        modal_points = frozenset((p.mode_cpu, p.mode_memory) for p in profiles)
        # The last load pass already measured the unscaled cpu/mem p90s, so
        # the first memory iteration reuses them; each appended scale costs
        # one further statistics pass.
        for _ in range(3):
            if cpu_p90 <= 0 or mem_p90 <= 0:
                break
            ratio = mem_p90 / cpu_p90
            if abs(ratio - target) / target < 0.05:
                break
            memory_scales.append(float(np.clip(target / ratio, 0.25, 8.0)))
            cpu_p90, mem_p90, _ = _demand_stats(
                config, census, profiles, horizon_s,
                tuple(memory_scales), modal_points,
            )
    return TracePlan(profiles=profiles, memory_scales=tuple(memory_scales))


def stream_trace(
    config: SyntheticTraceConfig | None = None,
    plan: TracePlan | None = None,
):
    """Yield the trace's tasks in final order with constant memory.

    The stream is bit-identical to ``generate_trace(config).tasks`` at the
    same seed: one emission pass re-generates the calibrated task stream,
    applies the plan's memory-scale chain and sorts each arrival bin's
    buffer by ``(submit_time, job_id, index)``.  Per-bin sorting equals the
    materialized global sort because bins cover disjoint submit-time
    intervals and ``job_id`` increases monotonically across bins, which
    breaks any tie exactly at a bin boundary.

    Peak memory is one arrival bin's tasks (seconds of trace time), not the
    whole horizon.  ``plan`` lets a coordinator calibrate once
    (:func:`plan_trace`) and fan the recipe out to workers; omitted, it is
    computed here first.
    """
    from dataclasses import replace

    config = config or SyntheticTraceConfig()
    if plan is None:
        plan = plan_trace(config)
    census = config.census()
    horizon_s = config.horizon_hours * 3600.0
    modal_points = frozenset((p.mode_cpu, p.mode_memory) for p in plan.profiles)
    for bin_tasks in _iter_task_bins(config, census, plan.profiles, horizon_s):
        if plan.memory_scales:
            bin_tasks = [
                replace(
                    t,
                    memory=_scaled_memory(
                        t.cpu, t.memory, plan.memory_scales, modal_points
                    ),
                )
                for t in bin_tasks
            ]
        bin_tasks.sort(key=lambda t: (t.submit_time, t.job_id, t.index))
        yield from bin_tasks


def plan_params(plan: TracePlan) -> dict:
    """JSON-native encoding of a :class:`TracePlan` for scenario params.

    Values survive ``canonical_json`` round-trips exactly (python floats
    re-parse bit-identically from their repr), so journal resume's
    params-equality check holds for plans shipped inside scenario params.
    """
    return {
        "profiles": [
            {
                field_name: (
                    value.name
                    if isinstance(value, PriorityGroup)
                    else list(value) if isinstance(value, tuple) else value
                )
                for field_name in p.__dataclass_fields__
                for value in (getattr(p, field_name),)
            }
            for p in plan.profiles
        ],
        "memory_scales": list(plan.memory_scales),
    }


def plan_from_params(params: dict) -> TracePlan:
    """Inverse of :func:`plan_params`."""
    profiles = []
    for raw in params["profiles"]:
        kwargs = dict(raw)
        kwargs["group"] = PriorityGroup[kwargs["group"]]
        kwargs["priorities"] = tuple(int(p) for p in kwargs["priorities"])
        kwargs["priority_weights"] = tuple(float(w) for w in kwargs["priority_weights"])
        profiles.append(PriorityGroupProfile(**kwargs))
    return TracePlan(
        profiles=tuple(profiles),
        memory_scales=tuple(float(s) for s in params["memory_scales"]),
    )


def _normalized(weights: tuple[float, ...]) -> np.ndarray:
    array = np.asarray(weights, dtype=float)
    return array / array.sum()


def _scheduling_class_for(rng: np.random.Generator, group: PriorityGroup) -> int:
    """Scheduling class correlated with priority group (Section III)."""
    weights = {
        PriorityGroup.GRATIS: (0.70, 0.25, 0.04, 0.01),
        PriorityGroup.OTHER: (0.35, 0.40, 0.20, 0.05),
        PriorityGroup.PRODUCTION: (0.05, 0.20, 0.40, 0.35),
    }[group]
    return int(rng.choice(4, p=np.asarray(weights)))
