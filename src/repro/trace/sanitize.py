"""Streaming dirty-trace sanitizer: clean / repair / quarantine.

The paper analyzes the public Google cluster trace, which is famously messy
(missing fields, clock skew, zero-duration records).  ``load_tasks_csv``
deliberately raises :class:`repro.errors.TraceFieldCorrupt` on the first
bad cell — the right contract for data that *should* be pristine — but the
robustness suite needs to ingest traces that are known-dirty without
crashing on row one.  This module sits in front of the reader and
classifies every record into one of three buckets:

``clean``
    Parsed and validated untouched.
``repaired``
    Usable after a deterministic rule fired (see table below); the record
    stays in the trace.
``quarantined``
    Unusable; the record is dropped from the trace and appended to a
    quarantine JSONL file with its row number, rule and raw cells.

Repair rules (applied in order; one record can trigger several):

| rule | trigger | repair |
|---|---|---|
| ``scheduling_class_defaulted`` | missing/unparseable or outside 0..3 | default to 0 (batch) |
| ``allowed_platforms_defaulted`` | missing/unparseable constraint cell | drop the constraint |
| ``duration_clamped`` | finite duration <= 0 | clamp to ``MIN_DURATION`` |
| ``resource_clamped`` | finite cpu/memory outside (0, 1] | clamp into ``[RESOURCE_FLOOR, 1]`` |
| ``duplicate_id_renumbered`` | (job_id, task_index) already seen | bump index to the next free one |

Quarantine rules:

| rule | trigger |
|---|---|
| ``unparseable`` | a core cell is missing or fails to cast |
| ``nonfinite_time`` | NaN/Inf timestamp or duration |
| ``nonfinite_resource`` | NaN/Inf cpu or memory request |
| ``priority_out_of_range`` | priority outside 0..11 |
| ``timestamp_out_of_range`` | negative submit time, or beyond the trace horizon |
| ``schema_rejected`` | :class:`~repro.trace.schema.Task` still refused the record |

Everything is deterministic: the same byte stream yields the same tasks,
the same per-rule counts, and the same :attr:`SanitizationReport.digest`
(SHA-256 over the canonical-JSON report payload), so two sanitization runs
can be compared byte-for-byte in CI.
"""

from __future__ import annotations

import csv
import hashlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import TextIO

from repro.trace.reader import (
    _TASK_FIELDS,
    load_machine_types_csv,
    load_meta_csv,
)
from repro.trace.schema import NUM_PRIORITIES, Task, Trace

#: Floor applied when clamping non-positive durations (seconds).  Mirrors
#: the zero-duration records in the real trace: they ran, just briefly.
MIN_DURATION = 1.0

#: Floor applied when clamping non-positive resource requests — the same
#: floor Eq. 3 sizing uses, so repaired tasks stay schedulable.
RESOURCE_FLOOR = 1e-4

REPAIR_RULES = (
    "scheduling_class_defaulted",
    "allowed_platforms_defaulted",
    "duration_clamped",
    "resource_clamped",
    "duplicate_id_renumbered",
)

QUARANTINE_RULES = (
    "unparseable",
    "nonfinite_time",
    "nonfinite_resource",
    "priority_out_of_range",
    "timestamp_out_of_range",
    "schema_rejected",
)


class _Quarantine(Exception):
    """Internal signal: drop this record under the given rule."""

    def __init__(self, rule: str, detail: str) -> None:
        super().__init__(detail)
        self.rule = rule
        self.detail = detail


@dataclass(frozen=True)
class SanitizationReport:
    """Deterministic summary of one sanitization pass.

    ``digest`` is the SHA-256 of the canonical-JSON ``to_dict()`` payload
    (sorted keys, compact separators, NaN rejected) — byte-identical
    corpora produce byte-identical digests.  ``quarantine_path`` is kept
    *out* of the digest payload so reports stay comparable across temp
    directories.
    """

    records_total: int
    records_clean: int
    records_repaired: int
    records_quarantined: int
    repairs_by_rule: dict = field(default_factory=dict)
    quarantine_by_rule: dict = field(default_factory=dict)
    quarantined_rows: tuple = ()
    quarantine_path: str | None = None

    def to_dict(self) -> dict:
        """The canonical payload: everything except filesystem paths."""
        return {
            "records_total": self.records_total,
            "records_clean": self.records_clean,
            "records_repaired": self.records_repaired,
            "records_quarantined": self.records_quarantined,
            "repairs_by_rule": dict(sorted(self.repairs_by_rule.items())),
            "quarantine_by_rule": dict(sorted(self.quarantine_by_rule.items())),
            "quarantined_rows": [list(entry) for entry in self.quarantined_rows],
        }

    @property
    def digest(self) -> str:
        blob = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"), allow_nan=False
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _cast(row: dict, column: str, cast):
    """Cast one cell or raise ``_Quarantine('unparseable', ...)``."""
    value = row.get(column)
    if value is None:
        raise _Quarantine("unparseable", f"missing cell for column {column!r}")
    try:
        return cast(value)
    except (TypeError, ValueError):
        raise _Quarantine(
            "unparseable", f"column {column!r} has unparseable value {value!r}"
        ) from None


def _parse_platforms(raw: str) -> frozenset[int] | None:
    raw = raw.strip()
    if not raw:
        return None
    return frozenset(int(p) for p in raw.split("|"))


def _sanitize_row(
    row: dict,
    horizon: float | None,
    seen_uids: set[tuple[int, int]],
    repairs: list[str],
) -> Task:
    """One record through the rule table; raises ``_Quarantine`` to drop."""
    job_id = _cast(row, "job_id", int)
    index = _cast(row, "task_index", int)
    submit_time = _cast(row, "timestamp", float)
    duration = _cast(row, "duration", float)
    priority = _cast(row, "priority", int)
    cpu = _cast(row, "cpu_request", float)
    memory = _cast(row, "memory_request", float)

    # Defaultable fields repair instead of quarantining.
    try:
        scheduling_class = _cast(row, "scheduling_class", int)
    except _Quarantine:
        scheduling_class = 0
        repairs.append("scheduling_class_defaulted")
    try:
        allowed = _cast(row, "allowed_platforms", _parse_platforms)
    except _Quarantine:
        allowed = None
        repairs.append("allowed_platforms_defaulted")

    if not math.isfinite(submit_time) or not math.isfinite(duration):
        raise _Quarantine(
            "nonfinite_time", f"timestamp={submit_time}, duration={duration}"
        )
    if not math.isfinite(cpu) or not math.isfinite(memory):
        raise _Quarantine("nonfinite_resource", f"cpu={cpu}, memory={memory}")
    if not 0 <= priority < NUM_PRIORITIES:
        raise _Quarantine("priority_out_of_range", f"priority={priority}")
    if submit_time < 0:
        raise _Quarantine("timestamp_out_of_range", f"timestamp={submit_time} < 0")
    if horizon is not None and submit_time > horizon:
        raise _Quarantine(
            "timestamp_out_of_range",
            f"timestamp={submit_time} beyond horizon {horizon}",
        )

    if duration <= 0:
        duration = MIN_DURATION
        repairs.append("duration_clamped")
    if not 0 <= scheduling_class <= 3:
        scheduling_class = 0
        repairs.append("scheduling_class_defaulted")
    if not 0 < cpu <= 1:
        cpu = min(max(cpu, RESOURCE_FLOOR), 1.0)
        repairs.append("resource_clamped")
    if not 0 < memory <= 1:
        memory = min(max(memory, RESOURCE_FLOOR), 1.0)
        repairs.append("resource_clamped")
    if (job_id, index) in seen_uids:
        while (job_id, index) in seen_uids:
            index += 1
        repairs.append("duplicate_id_renumbered")
    seen_uids.add((job_id, index))

    try:
        return Task(
            job_id=job_id,
            index=index,
            submit_time=submit_time,
            duration=duration,
            priority=priority,
            scheduling_class=scheduling_class,
            cpu=cpu,
            memory=memory,
            allowed_platforms=allowed,
        )
    except ValueError as exc:  # belt and braces: no rule should reach here
        raise _Quarantine("schema_rejected", str(exc)) from None


def _record_payload(row: dict) -> dict:
    """A JSON-safe copy of the raw row (DictReader may use a None restkey)."""
    return {str(k): v for k, v in row.items()}


def sanitize_tasks_csv(
    path: str | Path,
    quarantine_path: str | Path | None = None,
    horizon: float | None = None,
) -> tuple[list[Task], SanitizationReport]:
    """Stream a (possibly dirty) task CSV into tasks plus a report.

    Never raises on record content: malformed rows land in the quarantine
    file (JSONL, one ``{"row", "rule", "detail", "record"}`` object per
    dropped record) and the per-rule counters.  ``horizon``, when given,
    quarantines records arriving after the trace end instead of letting a
    corrupt timestamp stretch the simulation horizon.
    """
    path = Path(path)
    if quarantine_path is None:
        quarantine_path = path.with_name(path.name + ".quarantine.jsonl")
    quarantine_path = Path(quarantine_path)

    tasks: list[Task] = []
    repairs_by_rule: dict[str, int] = {}
    quarantine_by_rule: dict[str, int] = {}
    quarantined_rows: list[tuple[int, str]] = []
    seen_uids: set[tuple[int, int]] = set()
    clean = 0
    repaired = 0
    total = 0

    with path.open(newline="") as handle, quarantine_path.open(
        "w", encoding="utf-8"
    ) as sink:
        reader = csv.DictReader(handle, restkey="_extra")
        for row_number, row in enumerate(reader, start=1):
            total += 1
            repairs: list[str] = []
            try:
                task = _sanitize_row(row, horizon, seen_uids, repairs)
            except _Quarantine as drop:
                quarantine_by_rule[drop.rule] = quarantine_by_rule.get(drop.rule, 0) + 1
                quarantined_rows.append((row_number, drop.rule))
                _write_quarantine_line(sink, row_number, drop, row)
                continue
            tasks.append(task)
            if repairs:
                repaired += 1
                for rule in repairs:
                    repairs_by_rule[rule] = repairs_by_rule.get(rule, 0) + 1
            else:
                clean += 1

    report = SanitizationReport(
        records_total=total,
        records_clean=clean,
        records_repaired=repaired,
        records_quarantined=total - clean - repaired,
        repairs_by_rule=repairs_by_rule,
        quarantine_by_rule=quarantine_by_rule,
        quarantined_rows=tuple(quarantined_rows),
        quarantine_path=str(quarantine_path),
    )
    return tasks, report


def _write_quarantine_line(
    sink: TextIO, row_number: int, drop: _Quarantine, row: dict
) -> None:
    entry = {
        "row": row_number,
        "rule": drop.rule,
        "detail": drop.detail,
        "record": _record_payload(row),
    }
    sink.write(json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n")


def sanitize_trace(
    directory: str | Path,
    quarantine_path: str | Path | None = None,
) -> tuple[Trace, SanitizationReport]:
    """Load a saved trace directory through the sanitizer.

    The machine census and meta files are loaded strictly (they are tiny
    and written by us); ``task_events.csv`` — the file that mirrors the
    messy public table — goes through :func:`sanitize_tasks_csv` with the
    meta horizon as the timestamp bound.
    """
    directory = Path(directory)
    machine_types = load_machine_types_csv(directory / "machine_types.csv")
    horizon, metadata = load_meta_csv(directory / "meta.csv")
    tasks, report = sanitize_tasks_csv(
        directory / "task_events.csv",
        quarantine_path=quarantine_path
        or directory / "task_events.csv.quarantine.jsonl",
        horizon=horizon,
    )
    trace = Trace.from_tasks(machine_types, tasks, horizon=horizon, metadata=metadata)
    return trace, report


def expected_columns() -> tuple[str, ...]:
    """The task CSV schema the sanitizer understands (reader's field list)."""
    return _TASK_FIELDS


__all__ = [
    "MIN_DURATION",
    "RESOURCE_FLOOR",
    "REPAIR_RULES",
    "QUARANTINE_RULES",
    "SanitizationReport",
    "sanitize_tasks_csv",
    "sanitize_trace",
    "expected_columns",
]
