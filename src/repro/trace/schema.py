"""Core trace schema: tasks, jobs, machine types and whole traces.

Mirrors the publicly documented Google clusterdata-2011 format that the paper
analyzes in Section III:

- a *job* is an application consisting of one or more *tasks*;
- each task carries a normalized CPU and memory request in ``[0, 1]``
  (normalized to the largest machine), a priority in ``0..11`` and a
  scheduling class in ``0..3``;
- priorities are grouped into *gratis* (0-1), *other* (2-8) and
  *production* (9-11);
- machines are characterized by normalized CPU/memory capacity and a
  platform id identifying the micro-architecture.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Sequence

NUM_PRIORITIES = 12
"""The Google trace defines priorities 0..11."""


class PriorityGroup(enum.IntEnum):
    """Coarse-grained priority groups used throughout the paper.

    The paper (Section III, following Reiss et al.) partitions the 12 task
    priorities into three groups and analyzes workload at group granularity.
    """

    GRATIS = 0
    OTHER = 1
    PRODUCTION = 2

    @classmethod
    def from_priority(cls, priority: int) -> "PriorityGroup":
        """Map a raw priority (0..11) to its group.

        >>> PriorityGroup.from_priority(0)
        <PriorityGroup.GRATIS: 0>
        >>> PriorityGroup.from_priority(9)
        <PriorityGroup.PRODUCTION: 2>
        """
        if not 0 <= priority < NUM_PRIORITIES:
            raise ValueError(f"priority must be in 0..{NUM_PRIORITIES - 1}, got {priority}")
        if priority <= 1:
            return cls.GRATIS
        if priority <= 8:
            return cls.OTHER
        return cls.PRODUCTION

    @property
    def priorities(self) -> range:
        """The raw priorities belonging to this group."""
        return {
            PriorityGroup.GRATIS: range(0, 2),
            PriorityGroup.OTHER: range(2, 9),
            PriorityGroup.PRODUCTION: range(9, 12),
        }[self]

    @property
    def label(self) -> str:
        """Human-readable label matching the paper's figures."""
        return {
            PriorityGroup.GRATIS: "gratis (0-1)",
            PriorityGroup.OTHER: "other (2-8)",
            PriorityGroup.PRODUCTION: "production (9-11)",
        }[self]


PRIORITY_GROUPS: tuple[PriorityGroup, ...] = (
    PriorityGroup.GRATIS,
    PriorityGroup.OTHER,
    PriorityGroup.PRODUCTION,
)


class SchedulingClass(enum.IntEnum):
    """Latency-sensitivity class (0 = batch, 3 = most latency-sensitive)."""

    BATCH = 0
    STANDARD = 1
    SENSITIVE = 2
    INTERACTIVE = 3


@dataclass(frozen=True, slots=True)
class Task:
    """A single schedulable unit of work.

    Attributes
    ----------
    job_id:
        Identifier of the owning job.
    index:
        Index of this task within its job.
    submit_time:
        Arrival time in seconds since trace start.
    duration:
        Execution time in seconds once scheduled.
    priority:
        Raw priority, 0 (lowest) .. 11 (highest).
    scheduling_class:
        Latency-sensitivity class, 0..3.
    cpu:
        Normalized CPU request in ``(0, 1]`` (1.0 = largest machine).
    memory:
        Normalized memory request in ``(0, 1]``.
    allowed_platforms:
        Optional placement constraint: the set of machine platform ids this
        task may run on.  ``None`` means unconstrained.
    """

    job_id: int
    index: int
    submit_time: float
    duration: float
    priority: int
    scheduling_class: int
    cpu: float
    memory: float
    allowed_platforms: frozenset[int] | None = None

    def __post_init__(self) -> None:
        if self.submit_time < 0:
            raise ValueError(f"submit_time must be >= 0, got {self.submit_time}")
        if self.duration <= 0 or not math.isfinite(self.duration):
            raise ValueError(f"duration must be positive and finite, got {self.duration}")
        if not 0 <= self.priority < NUM_PRIORITIES:
            raise ValueError(f"priority must be in 0..11, got {self.priority}")
        if not 0 <= self.scheduling_class <= 3:
            raise ValueError(f"scheduling_class must be in 0..3, got {self.scheduling_class}")
        if not 0 < self.cpu <= 1:
            raise ValueError(f"cpu request must be in (0, 1], got {self.cpu}")
        if not 0 < self.memory <= 1:
            raise ValueError(f"memory request must be in (0, 1], got {self.memory}")

    @property
    def priority_group(self) -> PriorityGroup:
        """The coarse priority group this task belongs to."""
        return PriorityGroup.from_priority(self.priority)

    @property
    def uid(self) -> tuple[int, int]:
        """Globally unique (job_id, index) pair."""
        return (self.job_id, self.index)

    @property
    def demand(self) -> tuple[float, float]:
        """(cpu, memory) request vector."""
        return (self.cpu, self.memory)

    def fits_on(self, machine: "MachineType") -> bool:
        """Whether this task can ever be placed on the given machine type."""
        if self.allowed_platforms is not None and machine.platform_id not in self.allowed_platforms:
            return False
        return self.cpu <= machine.cpu_capacity and self.memory <= machine.memory_capacity

    def with_submit_time(self, submit_time: float) -> "Task":
        """Copy of this task arriving at a different time."""
        return replace(self, submit_time=submit_time)


@dataclass(frozen=True, slots=True)
class Job:
    """An application: a named group of tasks sharing a job id."""

    job_id: int
    tasks: tuple[Task, ...]

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError("a job must contain at least one task")
        for task in self.tasks:
            if task.job_id != self.job_id:
                raise ValueError(
                    f"task {task.uid} does not belong to job {self.job_id}"
                )

    @property
    def submit_time(self) -> float:
        """Arrival time of the earliest task."""
        return min(task.submit_time for task in self.tasks)

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)


@dataclass(frozen=True, slots=True)
class MachineType:
    """A homogeneous class of physical machines.

    Capacities are normalized so the largest machine in the census has
    capacity 1.0, matching the Google trace convention (Section III-C).
    """

    platform_id: int
    cpu_capacity: float
    memory_capacity: float
    count: int
    name: str = ""

    def __post_init__(self) -> None:
        if not 0 < self.cpu_capacity <= 1:
            raise ValueError(f"cpu_capacity must be in (0, 1], got {self.cpu_capacity}")
        if not 0 < self.memory_capacity <= 1:
            raise ValueError(
                f"memory_capacity must be in (0, 1], got {self.memory_capacity}"
            )
        if self.count < 0:
            raise ValueError(f"count must be >= 0, got {self.count}")

    @property
    def capacity(self) -> tuple[float, float]:
        """(cpu, memory) capacity vector."""
        return (self.cpu_capacity, self.memory_capacity)

    def can_host(self, task: Task) -> bool:
        """Whether a single instance can host the task (alias of Task.fits_on)."""
        return task.fits_on(self)


@dataclass(frozen=True)
class Trace:
    """An immutable workload trace: a machine census plus a task stream.

    Tasks are stored sorted by submit time; the constructor enforces this so
    downstream consumers (simulator, arrival binning) can rely on it.
    """

    machine_types: tuple[MachineType, ...]
    tasks: tuple[Task, ...]
    horizon: float
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError(f"horizon must be positive, got {self.horizon}")
        if not self.machine_types:
            raise ValueError("trace must define at least one machine type")
        platform_ids = [m.platform_id for m in self.machine_types]
        if len(set(platform_ids)) != len(platform_ids):
            raise ValueError("machine platform ids must be unique")
        for prev, cur in zip(self.tasks, self.tasks[1:]):
            if cur.submit_time < prev.submit_time:
                raise ValueError("tasks must be sorted by submit_time")
        for task in self.tasks:
            if task.submit_time > self.horizon:
                raise ValueError(
                    f"task {task.uid} arrives at {task.submit_time} after "
                    f"horizon {self.horizon}"
                )

    @property
    def num_tasks(self) -> int:
        return len(self.tasks)

    @property
    def num_machines(self) -> int:
        return sum(m.count for m in self.machine_types)

    @property
    def num_jobs(self) -> int:
        return len({task.job_id for task in self.tasks})

    def machine_type_by_platform(self, platform_id: int) -> MachineType:
        """Look up a machine type by its platform id."""
        for machine_type in self.machine_types:
            if machine_type.platform_id == platform_id:
                return machine_type
        raise KeyError(f"no machine type with platform_id={platform_id}")

    def tasks_in_group(self, group: PriorityGroup) -> tuple[Task, ...]:
        """All tasks whose priority falls in the given group."""
        return tuple(t for t in self.tasks if t.priority_group is group)

    def jobs(self) -> Iterator[Job]:
        """Group the task stream into jobs (in order of first arrival)."""
        by_job: dict[int, list[Task]] = {}
        for task in self.tasks:
            by_job.setdefault(task.job_id, []).append(task)
        for job_id, tasks in by_job.items():
            yield Job(job_id=job_id, tasks=tuple(tasks))

    def window(self, start: float, end: float) -> "Trace":
        """A sub-trace containing tasks arriving in ``[start, end)``.

        Submit times are re-based so the window starts at zero.
        """
        if not 0 <= start < end <= self.horizon:
            raise ValueError(f"invalid window [{start}, {end}) for horizon {self.horizon}")
        selected = tuple(
            task.with_submit_time(task.submit_time - start)
            for task in self.tasks
            if start <= task.submit_time < end
        )
        return Trace(
            machine_types=self.machine_types,
            tasks=selected,
            horizon=end - start,
            metadata=dict(self.metadata, window=(start, end)),
        )

    @staticmethod
    def from_tasks(
        machine_types: Sequence[MachineType],
        tasks: Iterable[Task],
        horizon: float | None = None,
        metadata: dict | None = None,
    ) -> "Trace":
        """Build a trace from an unsorted task iterable, inferring horizon."""
        ordered = tuple(sorted(tasks, key=lambda t: (t.submit_time, t.job_id, t.index)))
        if horizon is None:
            horizon = ordered[-1].submit_time + 1.0 if ordered else 1.0
        return Trace(
            machine_types=tuple(machine_types),
            tasks=ordered,
            horizon=horizon,
            metadata=metadata or {},
        )
