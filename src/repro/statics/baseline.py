"""Baseline support: grandfathered findings with justifications.

A baseline is a committed JSON file listing findings that are known,
justified, and deliberately not fixed (legitimate wall-clock reads in the
solver-timeout guard, for example).  Matching is by
:attr:`~repro.statics.findings.Finding.fingerprint` — path, code and the
offending line's *text*, not its number — so unrelated edits do not
invalidate the baseline, while any change to the offending line itself
forces a fresh decision.

Duplicate fingerprints (the same code on identical lines) are handled by
count: a baseline entry with ``count: 2`` absorbs at most two matching
findings; a third is reported.  ``repro lint --fix-baseline`` rewrites the
file from the current findings, preserving justifications for entries
that survive.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.statics.findings import Finding

BASELINE_VERSION = 1

#: Default baseline location, relative to the lint root.
DEFAULT_BASELINE_NAME = "lint-baseline.json"


class BaselineError(ValueError):
    """The baseline file is unreadable or structurally invalid."""


@dataclass
class BaselineEntry:
    """One grandfathered finding."""

    fingerprint: str
    code: str
    path: str
    count: int = 1
    message: str = ""
    justification: str = ""

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "code": self.code,
            "path": self.path,
            "count": self.count,
            "message": self.message,
            "justification": self.justification,
        }


@dataclass
class Baseline:
    """A set of grandfathered findings, keyed by fingerprint."""

    entries: dict[str, BaselineEntry] = field(default_factory=dict)

    def apply(self, findings: list[Finding]) -> tuple[list[Finding], int]:
        """Split findings into (reported, number_baselined).

        Each entry absorbs at most ``count`` findings with its
        fingerprint; the rest are reported.
        """
        budget = {fp: entry.count for fp, entry in self.entries.items()}
        reported: list[Finding] = []
        absorbed = 0
        for finding in findings:
            remaining = budget.get(finding.fingerprint, 0)
            if remaining > 0:
                budget[finding.fingerprint] = remaining - 1
                absorbed += 1
            else:
                reported.append(finding)
        return reported, absorbed

    def stale_fingerprints(self, findings: list[Finding]) -> list[str]:
        """Entries no longer matched by any current finding."""
        current = {finding.fingerprint for finding in findings}
        return sorted(fp for fp in self.entries if fp not in current)


def load_baseline(path: str | Path) -> Baseline:
    """Read a baseline file; raises :class:`BaselineError` if malformed."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path} has unsupported structure/version "
            f"(expected version {BASELINE_VERSION})"
        )
    entries: dict[str, BaselineEntry] = {}
    for raw in payload.get("findings", []):
        try:
            entry = BaselineEntry(
                fingerprint=raw["fingerprint"],
                code=raw["code"],
                path=raw["path"],
                count=int(raw.get("count", 1)),
                message=raw.get("message", ""),
                justification=raw.get("justification", ""),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise BaselineError(
                f"baseline {path} has a malformed entry: {raw!r}"
            ) from exc
        if entry.count < 1:
            raise BaselineError(
                f"baseline {path}: entry {entry.fingerprint} has "
                f"non-positive count {entry.count}"
            )
        if entry.fingerprint in entries:
            # Silently keeping the last duplicate would let two people
            # "justify" the same fingerprint differently and one
            # justification vanish without trace — refuse instead.
            raise BaselineError(
                f"baseline {path}: duplicate fingerprint "
                f"{entry.fingerprint} (use 'count' for repeated identical "
                f"lines, not repeated entries)"
            )
        entries[entry.fingerprint] = entry
    return Baseline(entries=entries)


def build_baseline(
    findings: list[Finding], previous: Baseline | None = None
) -> Baseline:
    """Baseline for the *current* findings, keeping old justifications."""
    entries: dict[str, BaselineEntry] = {}
    for finding in findings:
        entry = entries.get(finding.fingerprint)
        if entry is not None:
            entry.count += 1
            continue
        justification = ""
        if previous is not None and finding.fingerprint in previous.entries:
            justification = previous.entries[finding.fingerprint].justification
        entries[finding.fingerprint] = BaselineEntry(
            fingerprint=finding.fingerprint,
            code=finding.code,
            path=finding.path,
            count=1,
            message=finding.message,
            justification=justification or "TODO: justify or fix",
        )
    return Baseline(entries=entries)


def save_baseline(baseline: Baseline, path: str | Path) -> Path:
    """Write the baseline as deterministic, diff-friendly JSON."""
    path = Path(path)
    entries = sorted(
        baseline.entries.values(), key=lambda e: (e.path, e.code, e.fingerprint)
    )
    payload = {
        "version": BASELINE_VERSION,
        "tool": "harmonylint",
        "findings": [entry.to_dict() for entry in entries],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "BASELINE_VERSION",
    "DEFAULT_BASELINE_NAME",
    "build_baseline",
    "load_baseline",
    "save_baseline",
]
