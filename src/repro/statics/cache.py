"""Incremental analysis cache for the project-level lint engine.

Parsing and per-file rule execution dominate a cold ``repro lint`` run;
the interprocedural passes over module summaries are cheap.  The cache
therefore persists, per file and keyed by the SHA-256 of its *content*:

- the per-file findings (post-suppression, pre-baseline, without SUP001
  findings, which are recomputed every run because suppression
  usefulness depends on the project passes too),
- the suppression records with the per-file codes they absorbed,
- the :class:`~repro.statics.graph.ModuleSummary` the graph is built
  from,

so a warm run re-reads sources, hashes them, and only re-analyzes files
whose bytes changed — everything else is JSON deserialization.

Invalidation is **transitive through the import graph**: when a file
changes, every cached file that (transitively) imports it is re-analyzed
too.  Per-file findings are *mostly* file-local today, but rule scoping
already reads cross-module facts (the ERR001 taxonomy, allowlist tables)
and the summaries feed whole-program passes; transitive invalidation
keeps the cache conservative rather than clever.

The cache file is machine-local state (gitignored); a missing, corrupt,
or version-skewed cache degrades silently to a cold run.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from pathlib import Path

from repro.statics.findings import Finding
from repro.statics.graph import ModuleSummary, module_dotted_name

#: Bump whenever rules, summaries, or the entry schema change shape —
#: stale-version caches are discarded wholesale.
CACHE_VERSION = 3

#: Default cache location, relative to the lint root.
DEFAULT_CACHE_NAME = ".harmonylint-cache.json"


def content_hash(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class FileEntry:
    """One cached file: hash + findings + suppressions + summary."""

    def __init__(
        self,
        file_hash: str,
        findings: list[Finding],
        suppressions: list[dict],
        summary: ModuleSummary,
        suppressed: int = 0,
    ) -> None:
        self.file_hash = file_hash
        self.findings = findings
        self.suppressions = suppressions
        self.summary = summary
        self.suppressed = suppressed

    def to_dict(self) -> dict:
        return {
            "hash": self.file_hash,
            "findings": [finding.to_payload() for finding in self.findings],
            "suppressions": self.suppressions,
            "summary": self.summary.to_dict(),
            "suppressed": self.suppressed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FileEntry":
        return cls(
            file_hash=payload["hash"],
            findings=[
                Finding.from_payload(raw) for raw in payload["findings"]
            ],
            suppressions=payload["suppressions"],
            summary=ModuleSummary.from_dict(payload["summary"]),
            suppressed=int(payload["suppressed"]),
        )


class AnalysisCache:
    """Load/consult/update the per-file analysis cache."""

    def __init__(self, path: str | Path | None) -> None:
        self.path = Path(path) if path is not None else None
        self.entries: dict[str, FileEntry] = {}
        self.hits = 0
        self.misses = 0
        self._loaded_from_disk = False
        if self.path is not None and self.path.exists():
            self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return  # cold run; the save below rewrites it
        if (
            not isinstance(payload, dict)
            or payload.get("version") != CACHE_VERSION
        ):
            return
        try:
            for rel, raw in payload.get("files", {}).items():
                self.entries[rel] = FileEntry.from_dict(raw)
        except (KeyError, TypeError, ValueError):
            self.entries = {}
            return
        self._loaded_from_disk = True

    # ------------------------------------------------------------ validation

    def valid_files(self, hashes: dict[str, str]) -> set[str]:
        """Files whose cached entry may be reused for this run.

        Starts from exact content-hash matches, then *removes* the
        transitive import-closure of every changed/new/deleted file: if
        ``a.py`` imports ``b.py`` and ``b.py`` changed, ``a.py`` is
        re-analyzed even though its own bytes did not move.
        """
        unchanged = {
            rel
            for rel, entry in self.entries.items()
            if hashes.get(rel) == entry.file_hash
        }
        changed = set(hashes) - unchanged
        changed |= set(self.entries) - set(hashes)  # deleted files

        # Reverse import edges from the *cached* summaries (dotted module
        # names resolved back to tracked rel paths).
        by_module: dict[str, str] = {}
        for rel in self.entries:
            dotted = module_dotted_name(rel)
            if dotted is not None:
                by_module[dotted] = rel
        importers: dict[str, set[str]] = {}
        for rel, entry in self.entries.items():
            for dotted in entry.summary.imports:
                # `from repro.a.b import c` may name module repro.a.b.c
                # or attribute c of repro.a.b — invalidate on both.
                for candidate in (dotted, dotted.rsplit(".", 1)[0]):
                    target = by_module.get(candidate)
                    if target is not None:
                        importers.setdefault(target, set()).add(rel)

        queue = deque(sorted(changed))
        dirty = set(changed)
        while queue:
            current = queue.popleft()
            for dependent in sorted(importers.get(current, ())):
                if dependent not in dirty:
                    dirty.add(dependent)
                    queue.append(dependent)
        return unchanged - dirty

    def get(self, rel: str) -> FileEntry | None:
        return self.entries.get(rel)

    def put(self, rel: str, entry: FileEntry) -> None:
        self.entries[rel] = entry

    def prune(self, live: set[str]) -> None:
        """Drop entries for files no longer on disk."""
        for rel in sorted(set(self.entries) - live):
            del self.entries[rel]

    def save(self) -> None:
        if self.path is None:
            return
        payload = {
            "version": CACHE_VERSION,
            "tool": "harmonylint",
            "files": {
                rel: self.entries[rel].to_dict()
                for rel in sorted(self.entries)
            },
        }
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(
            json.dumps(payload, sort_keys=True, separators=(",", ":")),
            encoding="utf-8",
        )
        tmp.replace(self.path)


__all__ = [
    "AnalysisCache",
    "CACHE_VERSION",
    "DEFAULT_CACHE_NAME",
    "FileEntry",
    "content_hash",
]
