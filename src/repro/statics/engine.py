"""The harmonylint engine: discovery, dispatch, suppression, reporting.

One :class:`LintEngine` walks each module's AST exactly once.  Rules
register themselves simply by defining ``visit_<NodeType>`` methods; the
dispatcher indexes those handlers per node type, maintains the function
scope stack, and hands every rule the shared
:class:`~repro.statics.context.ModuleContext`.

After the walk the engine applies ``# repro: noqa[CODE]`` suppressions
(marking which comments earned their keep), emits SUP001 for the ones that
did not, and sorts the surviving findings deterministically — the linter
is held to the same reproducibility bar it enforces.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.statics.context import ModuleContext
from repro.statics.findings import Finding
from repro.statics.rules import KNOWN_CODES, Rule, UselessSuppression, default_rules

#: Directory names never descended into during discovery.  ``fixtures``
#: is excluded because the lint fixture corpus under tests/fixtures/lint/
#: contains deliberately bad snippets (lint it explicitly via ``--root``).
EXCLUDED_DIRS = frozenset(
    {".git", "__pycache__", ".venv", "venv", "build", "dist", "fixtures"}
)


class _Walk(ast.NodeVisitor):
    """Single-pass dispatcher: node events fan out to interested rules."""

    def __init__(self, ctx: ModuleContext, rules: list[Rule], sink: list[Finding]):
        self.ctx = ctx
        self.scopes: list[ast.AST] = []
        self._sink = sink
        self._current_rule: Rule | None = None
        self._handlers: dict[str, list[tuple[Rule, object]]] = {}
        for rule in rules:
            for attr in dir(rule):
                if attr.startswith("visit_"):
                    node_type = attr[len("visit_"):]
                    self._handlers.setdefault(node_type, []).append(
                        (rule, getattr(rule, attr))
                    )

    def report(self, node: ast.AST, message: str) -> None:
        rule = self._current_rule
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        self._sink.append(
            Finding(
                code=rule.code,
                severity=rule.severity,
                path=self.ctx.rel_path,
                line=line,
                column=column,
                message=message,
                source_line=self.ctx.source_line(line),
            )
        )

    def visit(self, node: ast.AST) -> None:
        is_scope = isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        )
        if is_scope:
            self.scopes.append(node)
        try:
            for rule, handler in self._handlers.get(type(node).__name__, ()):
                self._current_rule = rule
                handler(node, self)
            self._current_rule = None
            self.generic_visit(node)
        finally:
            if is_scope:
                self.scopes.pop()


@dataclass
class LintReport:
    """Outcome of one lint run (pre-baseline)."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    def by_code(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return dict(sorted(counts.items()))

    def codes(self) -> set[str]:
        return {finding.code for finding in self.findings}


class LintEngine:
    """Runs the rule set over files and directories."""

    def __init__(self, rules: list[Rule] | None = None) -> None:
        self.rules = rules if rules is not None else default_rules()
        self._sup001 = next(
            (r for r in self.rules if isinstance(r, UselessSuppression)), None
        )
        self._suppressed_last = 0

    # ------------------------------------------------------------- discovery

    @staticmethod
    def discover(paths: list[Path]) -> list[Path]:
        """All ``.py`` files under ``paths``, deterministically sorted.

        Explicit file arguments are always linted, even inside excluded
        directories; discovery only prunes while walking directories.
        """
        files: set[Path] = set()
        for path in paths:
            if path.is_file():
                files.add(path)
                continue
            for candidate in sorted(path.rglob("*.py")):
                relative = candidate.relative_to(path)
                if any(part in EXCLUDED_DIRS for part in relative.parts[:-1]):
                    continue
                files.add(candidate)
        return sorted(files)

    # ------------------------------------------------------------------ lint

    def lint_source(self, rel_path: str, source: str) -> list[Finding]:
        """Lint one in-memory module (the test-facing entry point)."""
        ctx = ModuleContext(rel_path, source)
        if ctx.tree is None:
            error = ctx.syntax_error
            line = error.lineno or 1
            return [
                Finding(
                    code="SYN000",
                    severity="error",
                    path=ctx.rel_path,
                    line=line,
                    column=(error.offset or 1) - 1,
                    message=f"file does not parse: {error.msg}",
                    source_line=ctx.source_line(line),
                )
            ]

        active = [rule for rule in self.rules if rule.applies(ctx)]
        for rule in active:
            rule.start_module(ctx)
        raw: list[Finding] = []
        walker = _Walk(ctx, active, raw)
        walker.visit(ctx.tree)

        kept: list[Finding] = []
        for finding in raw:
            suppression = ctx.suppression_for(finding.line, finding.code)
            if suppression is not None:
                suppression.used_codes.add(finding.code)
            else:
                kept.append(finding)
        self._suppressed_last = len(raw) - len(kept)

        kept.extend(self._useless_suppressions(ctx))
        kept.sort(key=Finding.sort_key)
        return kept

    def _useless_suppressions(self, ctx: ModuleContext) -> list[Finding]:
        """SUP001 findings: unknown codes and suppressions that matched
        nothing.  Exempt from suppression by design."""
        if self._sup001 is None:
            return []
        findings = []

        def emit(suppression, message):
            findings.append(
                Finding(
                    code=self._sup001.code,
                    severity=self._sup001.severity,
                    path=ctx.rel_path,
                    line=suppression.line,
                    column=0,
                    message=message,
                    source_line=ctx.source_line(suppression.line),
                )
            )

        for suppression in ctx.suppressions:
            if suppression.codes is None:
                if not suppression.used_codes:
                    emit(suppression, "blanket 'repro: noqa' suppressed nothing")
                continue
            for code in sorted(suppression.codes):
                if code not in KNOWN_CODES:
                    emit(suppression, f"unknown rule code {code} in suppression")
                elif code not in suppression.used_codes:
                    emit(
                        suppression,
                        f"suppression for {code} matched no finding; delete it",
                    )
        return findings

    def lint_paths(
        self, paths: list[str | Path], root: str | Path = "."
    ) -> LintReport:
        """Lint files/directories (resolved against ``root``).

        Finding paths are reported relative to ``root`` (POSIX form), so
        the same tree lints identically from any working directory — and
        so baseline fingerprints are location-independent.
        """
        root = Path(root).resolve()
        resolved: list[Path] = []
        for path in paths:
            path = Path(path)
            if not path.is_absolute():
                path = root / path
            if not path.exists():
                raise FileNotFoundError(f"no such file or directory: {path}")
            resolved.append(path)

        report = LintReport()
        for file_path in self.discover(resolved):
            try:
                rel = file_path.resolve().relative_to(root).as_posix()
            except ValueError:
                rel = file_path.as_posix()
            source = file_path.read_text(encoding="utf-8")
            report.findings.extend(self.lint_source(rel, source))
            report.suppressed += self._suppressed_last
            report.files_checked += 1
        report.findings.sort(key=Finding.sort_key)
        return report


def lint_paths(
    paths: list[str | Path], root: str | Path = ".", rules: list[Rule] | None = None
) -> LintReport:
    """Convenience wrapper: lint ``paths`` with the default rule set."""
    return LintEngine(rules=rules).lint_paths(paths, root=root)


__all__ = ["LintEngine", "LintReport", "lint_paths", "EXCLUDED_DIRS"]
