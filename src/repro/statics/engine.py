"""The harmonylint engine: discovery, dispatch, suppression, reporting.

v1 of the engine was strictly per-file: one :class:`LintEngine` walked
each module's AST exactly once and every finding was local to that walk.
v2 keeps that walk (rules still register by defining ``visit_<NodeType>``
methods; the dispatcher indexes handlers per node type) but embeds it in
a project pipeline:

1. **Per-file phase** — parse + rule walk + ``# repro: noqa`` suppression
   per module, producing findings *and* a cacheable
   :class:`~repro.statics.graph.ModuleSummary`.  This phase is pure per
   file, so it can run under a spawn multiprocessing pool (``jobs=N``)
   and hit the incremental cache (:mod:`repro.statics.cache`).
2. **Graph phase** — summaries assemble into the project call graph.
3. **Project phase** — the interprocedural passes
   (:mod:`repro.statics.flow`: FLOW001/ORD001/CONC001/CONC002) run over
   the graph; their findings pass through the same suppression comments.
4. **SUP001 phase** — suppression usefulness is judged only now, once
   both per-file and project findings have had the chance to use each
   comment.

Findings are sorted deterministically at the end regardless of worker
count or cache state — the linter is held to the same reproducibility
bar it enforces.
"""

from __future__ import annotations

import ast
import multiprocessing
from dataclasses import dataclass, field
from pathlib import Path

from repro.statics.cache import AnalysisCache, FileEntry, content_hash
from repro.statics.context import ModuleContext, Suppression
from repro.statics.findings import Finding
from repro.statics.flow import run_project_passes
from repro.statics.graph import (
    ModuleSummary,
    ProjectGraph,
    build_graph,
    summarize_module,
)
from repro.statics.rules import KNOWN_CODES, Rule, UselessSuppression, default_rules

#: Directory names never descended into during discovery.  ``fixtures``
#: is excluded because the lint fixture corpus under tests/fixtures/lint/
#: contains deliberately bad snippets (lint it explicitly via ``--root``).
EXCLUDED_DIRS = frozenset(
    {".git", "__pycache__", ".venv", "venv", "build", "dist", "fixtures"}
)


class _Walk(ast.NodeVisitor):
    """Single-pass dispatcher: node events fan out to interested rules."""

    def __init__(self, ctx: ModuleContext, rules: list[Rule], sink: list[Finding]):
        self.ctx = ctx
        self.scopes: list[ast.AST] = []
        self._sink = sink
        self._current_rule: Rule | None = None
        self._handlers: dict[str, list[tuple[Rule, object]]] = {}
        for rule in rules:
            for attr in dir(rule):
                if attr.startswith("visit_"):
                    node_type = attr[len("visit_"):]
                    self._handlers.setdefault(node_type, []).append(
                        (rule, getattr(rule, attr))
                    )

    def report(self, node: ast.AST, message: str) -> None:
        rule = self._current_rule
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        self._sink.append(
            Finding(
                code=rule.code,
                severity=rule.severity,
                path=self.ctx.rel_path,
                line=line,
                column=column,
                message=message,
                source_line=self.ctx.source_line(line),
            )
        )

    def visit(self, node: ast.AST) -> None:
        is_scope = isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        )
        if is_scope:
            self.scopes.append(node)
        try:
            for rule, handler in self._handlers.get(type(node).__name__, ()):
                self._current_rule = rule
                handler(node, self)
            self._current_rule = None
            self.generic_visit(node)
        finally:
            if is_scope:
                self.scopes.pop()


# -------------------------------------------------------- per-file analysis


def _suppression_records(
    suppressions: list[Suppression], ctx: ModuleContext
) -> list[dict]:
    """Suppression comments as JSON-able records (cache wire form)."""
    return [
        {
            "line": s.line,
            "codes": sorted(s.codes) if s.codes is not None else None,
            "used": sorted(s.used_codes),
            "text": ctx.source_line(s.line),
        }
        for s in suppressions
    ]


@dataclass
class FileAnalysis:
    """Per-file phase output for one module.

    ``findings`` are post-suppression and contain no SUP001 entries —
    suppression usefulness is judged only after the project passes.
    """

    rel_path: str
    findings: list[Finding]
    suppressions: list[dict]
    summary: ModuleSummary
    suppressed: int

    def to_payload(self) -> dict:
        return {
            "rel_path": self.rel_path,
            "findings": [f.to_payload() for f in self.findings],
            "suppressions": self.suppressions,
            "summary": self.summary.to_dict(),
            "suppressed": self.suppressed,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "FileAnalysis":
        return cls(
            rel_path=payload["rel_path"],
            findings=[Finding.from_payload(f) for f in payload["findings"]],
            suppressions=payload["suppressions"],
            summary=ModuleSummary.from_dict(payload["summary"]),
            suppressed=payload["suppressed"],
        )

    @classmethod
    def from_entry(cls, rel_path: str, entry: FileEntry) -> "FileAnalysis":
        return cls(
            rel_path=rel_path,
            findings=list(entry.findings),
            suppressions=entry.suppressions,
            summary=entry.summary,
            suppressed=entry.suppressed,
        )


def analyze_source(
    rel_path: str, source: str, rules: list[Rule] | None = None
) -> FileAnalysis:
    """Run the per-file phase on one in-memory module."""
    rules = rules if rules is not None else default_rules()
    ctx = ModuleContext(rel_path, source)
    summary = summarize_module(ctx)
    if ctx.tree is None:
        error = ctx.syntax_error
        line = error.lineno or 1
        finding = Finding(
            code="SYN000",
            severity="error",
            path=ctx.rel_path,
            line=line,
            column=(error.offset or 1) - 1,
            message=f"file does not parse: {error.msg}",
            source_line=ctx.source_line(line),
        )
        return FileAnalysis(
            rel_path=ctx.rel_path,
            findings=[finding],
            suppressions=_suppression_records(ctx.suppressions, ctx),
            summary=summary,
            suppressed=0,
        )

    active = [rule for rule in rules if not rule.project and rule.applies(ctx)]
    for rule in active:
        rule.start_module(ctx)
    raw: list[Finding] = []
    walker = _Walk(ctx, active, raw)
    walker.visit(ctx.tree)

    kept: list[Finding] = []
    for finding in raw:
        suppression = ctx.suppression_for(finding.line, finding.code)
        if suppression is not None:
            suppression.used_codes.add(finding.code)
        else:
            kept.append(finding)
    kept.sort(key=Finding.sort_key)
    return FileAnalysis(
        rel_path=ctx.rel_path,
        findings=kept,
        suppressions=_suppression_records(ctx.suppressions, ctx),
        summary=summary,
        suppressed=len(raw) - len(kept),
    )


def _analysis_worker(item: tuple[str, str]) -> dict:
    """Spawn-pool entry point: analyze one (rel_path, source) pair.

    Module-level and payload-returning so it survives the spawn pickle
    boundary; workers always run the default rule set.
    """
    rel_path, source = item
    return analyze_source(rel_path, source).to_payload()


# ---------------------------------------------------------------- reporting


@dataclass
class LintReport:
    """Outcome of one lint run (pre-baseline)."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def by_code(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return dict(sorted(counts.items()))

    def codes(self) -> set[str]:
        return {finding.code for finding in self.findings}


class LintEngine:
    """Runs the rule set over files and directories."""

    def __init__(self, rules: list[Rule] | None = None) -> None:
        self._default_rule_set = rules is None
        self.rules = rules if rules is not None else default_rules()
        self._sup001 = next(
            (r for r in self.rules if isinstance(r, UselessSuppression)), None
        )
        self._suppressed_last = 0

    # ------------------------------------------------------------- discovery

    @staticmethod
    def discover(paths: list[Path]) -> list[Path]:
        """All ``.py`` files under ``paths``, deterministically sorted.

        Explicit file arguments are always linted, even inside excluded
        directories; discovery only prunes while walking directories.
        """
        files: set[Path] = set()
        for path in paths:
            if path.is_file():
                files.add(path)
                continue
            for candidate in sorted(path.rglob("*.py")):
                relative = candidate.relative_to(path)
                if any(part in EXCLUDED_DIRS for part in relative.parts[:-1]):
                    continue
                files.add(candidate)
        return sorted(files)

    def _gather(
        self, paths: list[str | Path], root: Path
    ) -> dict[str, str]:
        """Discover and read sources: root-relative POSIX path -> text."""
        resolved: list[Path] = []
        for path in paths:
            path = Path(path)
            if not path.is_absolute():
                path = root / path
            if not path.exists():
                raise FileNotFoundError(f"no such file or directory: {path}")
            resolved.append(path)
        sources: dict[str, str] = {}
        for file_path in self.discover(resolved):
            try:
                rel = file_path.resolve().relative_to(root).as_posix()
            except ValueError:
                rel = file_path.as_posix()
            sources[rel] = file_path.read_text(encoding="utf-8")
        return sources

    # ------------------------------------------------------------------ lint

    def lint_source(self, rel_path: str, source: str) -> list[Finding]:
        """Lint one in-memory module (the test-facing entry point).

        Per-file rules plus inline SUP001 — no project passes, matching
        the v1 contract for single-module callers.
        """
        analysis = analyze_source(rel_path, source, self.rules)
        self._suppressed_last = analysis.suppressed
        kept = list(analysis.findings)
        if kept and kept[0].code == "SYN000":
            return kept
        state = _runtime_suppressions(analysis.suppressions)
        kept.extend(self._useless_suppressions(rel_path, state))
        kept.sort(key=Finding.sort_key)
        return kept

    def _useless_suppressions(
        self, rel_path: str, records: list[dict]
    ) -> list[Finding]:
        """SUP001 findings: unknown codes and suppressions that matched
        nothing.  Exempt from suppression by design."""
        if self._sup001 is None:
            return []
        findings = []

        def emit(record, message):
            findings.append(
                Finding(
                    code=self._sup001.code,
                    severity=self._sup001.severity,
                    path=rel_path,
                    line=record["line"],
                    column=0,
                    message=message,
                    source_line=record["text"],
                )
            )

        for record in records:
            if record["codes"] is None:
                if not record["used"]:
                    emit(record, "blanket 'repro: noqa' suppressed nothing")
                continue
            for code in sorted(record["codes"]):
                if code not in KNOWN_CODES:
                    emit(record, f"unknown rule code {code} in suppression")
                elif code not in record["used"]:
                    emit(
                        record,
                        f"suppression for {code} matched no finding; delete it",
                    )
        return findings

    # -------------------------------------------------------------- pipeline

    def _per_file_phase(
        self,
        sources: dict[str, str],
        cache: AnalysisCache | None,
        jobs: int,
    ) -> tuple[dict[str, FileAnalysis], int, int]:
        """Run (or replay from cache) the per-file phase for every file."""
        hashes = {rel: content_hash(text) for rel, text in sources.items()}
        results: dict[str, FileAnalysis] = {}
        hits = 0
        if cache is not None:
            for rel in sorted(cache.valid_files(hashes)):
                entry = cache.get(rel)
                if entry is not None and rel in sources:
                    results[rel] = FileAnalysis.from_entry(rel, entry)
                    hits += 1

        work = [
            (rel, sources[rel]) for rel in sorted(sources) if rel not in results
        ]
        if jobs > 1 and len(work) > 1 and self._default_rule_set:
            spawn = multiprocessing.get_context("spawn")
            with spawn.Pool(processes=min(jobs, len(work))) as pool:
                payloads = pool.map(_analysis_worker, work)
            analyses = [FileAnalysis.from_payload(p) for p in payloads]
        else:
            analyses = [
                analyze_source(rel, text, self.rules) for rel, text in work
            ]
        for (rel, _text), analysis in zip(work, analyses):
            results[rel] = analysis
            if cache is not None:
                cache.put(
                    rel,
                    FileEntry(
                        file_hash=hashes[rel],
                        findings=analysis.findings,
                        suppressions=analysis.suppressions,
                        summary=analysis.summary,
                        suppressed=analysis.suppressed,
                    ),
                )
        if cache is not None:
            cache.hits, cache.misses = hits, len(work)
            cache.prune(set(sources))
            cache.save()
        return results, hits, len(work)

    def lint_paths(
        self,
        paths: list[str | Path],
        root: str | Path = ".",
        *,
        cache: AnalysisCache | str | Path | None = None,
        jobs: int = 1,
        report_only: set[str] | None = None,
    ) -> LintReport:
        """Lint files/directories (resolved against ``root``).

        Finding paths are reported relative to ``root`` (POSIX form), so
        the same tree lints identically from any working directory — and
        so baseline fingerprints are location-independent.

        The full pipeline runs here: per-file rules (optionally parallel
        across ``jobs`` spawn workers, optionally warm-started from
        ``cache``), then the whole-program passes over the project call
        graph, then deferred SUP001.  ``report_only`` filters the
        *reported* findings to a set of rel paths (``--changed-only``)
        without narrowing the analysis itself.
        """
        root = Path(root).resolve()
        sources = self._gather(paths, root)
        if cache is not None and not isinstance(cache, AnalysisCache):
            cache = AnalysisCache(cache)
        results, hits, misses = self._per_file_phase(sources, cache, jobs)

        summaries = [results[rel].summary for rel in sorted(results)]
        graph = build_graph(summaries)
        project = run_project_passes(graph)

        state = {
            rel: _runtime_suppressions(results[rel].suppressions)
            for rel in sorted(results)
        }
        kept_project: list[Finding] = []
        project_suppressed = 0
        for finding in project:
            match = None
            for record in state.get(finding.path, ()):
                if record["line"] == finding.line and (
                    record["codes"] is None or finding.code in record["codes"]
                ):
                    match = record
                    break
            if match is not None:
                match["used"].add(finding.code)
                project_suppressed += 1
            else:
                kept_project.append(finding)

        findings: list[Finding] = []
        for rel in sorted(results):
            findings.extend(results[rel].findings)
        findings.extend(kept_project)
        for rel in sorted(state):
            findings.extend(self._useless_suppressions(rel, state[rel]))
        if report_only is not None:
            findings = [f for f in findings if f.path in report_only]
        findings.sort(key=Finding.sort_key)

        return LintReport(
            findings=findings,
            files_checked=len(sources),
            suppressed=sum(results[rel].suppressed for rel in results)
            + project_suppressed,
            cache_hits=hits,
            cache_misses=misses,
        )

    def project_graph(
        self, paths: list[str | Path], root: str | Path = "."
    ) -> ProjectGraph:
        """Build just the call graph (``repro lint --graph`` debugging)."""
        root = Path(root).resolve()
        sources = self._gather(paths, root)
        summaries = [
            summarize_module(ModuleContext(rel, sources[rel]))
            for rel in sorted(sources)
        ]
        return build_graph(summaries)


def _runtime_suppressions(records: list[dict]) -> list[dict]:
    """Mutable per-run copies of cached suppression records.

    ``used`` becomes a set so the project phase can add to it without
    the additions leaking back into the cache entry.
    """
    return [dict(record, used=set(record["used"])) for record in records]


def lint_paths(
    paths: list[str | Path],
    root: str | Path = ".",
    rules: list[Rule] | None = None,
    **kwargs,
) -> LintReport:
    """Convenience wrapper: lint ``paths`` with the default rule set."""
    return LintEngine(rules=rules).lint_paths(paths, root=root, **kwargs)


__all__ = [
    "EXCLUDED_DIRS",
    "FileAnalysis",
    "LintEngine",
    "LintReport",
    "analyze_source",
    "lint_paths",
]
