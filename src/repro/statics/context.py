"""Per-module analysis context shared by every lint rule.

:class:`ModuleContext` parses one file once and precomputes everything the
rules keep asking for: the import alias table (so ``import time as _time``
still resolves ``_time.perf_counter`` to ``time.perf_counter``), a parent
map for upward navigation, ``# repro: noqa[...]`` suppression comments, and
the path-derived scoping flags (test file? inside ``src/repro``? part of
the timing allowlist? a queueing/sizing hot path?).
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import PurePosixPath

#: Inline suppression syntax: a comment *starting with* ``repro: noqa`` —
#: blanket (``# repro: noqa``, discouraged) or code-scoped
#: (``# repro: noqa[DET001]`` / ``# repro: noqa[DET001,NUM001]``).  Only
#: genuine comment tokens count; a docstring mentioning the syntax is not
#: a suppression.
_NOQA_RE = re.compile(
    r"^#+:?\s*repro:\s*noqa(?:\[(?P<codes>[A-Za-z0-9_,\s]*)\])?", re.IGNORECASE
)

#: Directories whose wall-clock reads are legitimate (DET002 allowlist):
#: the runner measures scenario wall time by design, and PhaseTimer *is*
#: the sanctioned timing primitive.
TIMING_ALLOWLIST_DIRS = ("src/repro/runner",)
TIMING_ALLOWLIST_FILES = (
    "src/repro/simulation/timing.py",
    # SystemClock is the serve daemon's one sanctioned wall-clock reader.
    "src/repro/serve/clock.py",
)

#: Control-plane trees where DET006 applies: every clock read and every
#: stdlib-random call must flow through an injected seam.
CONTROL_PLANE_DIRS = ("src/repro/serve", "src/repro/simulation")
#: The seams themselves — the only files in those trees allowed to touch
#: the raw primitives.
CONTROL_PLANE_SEAM_FILES = (
    "src/repro/serve/clock.py",
    "src/repro/simulation/timing.py",
)

#: Numerically touchy modules where NUM001 (unguarded division/log/sqrt)
#: applies: the Erlang-C/M/G/N inversion and Eq. 3 container sizing.
NUMERIC_HOT_PATHS = ("src/repro/queueing",)
NUMERIC_HOT_PATH_FILES = ("src/repro/containers/sizing.py",)


@dataclass
class Suppression:
    """One ``# repro: noqa`` comment, tracked for SUP001 usefulness."""

    line: int
    codes: frozenset[str] | None  # None = blanket (suppresses everything)
    used_codes: set[str] = field(default_factory=set)

    def covers(self, code: str) -> bool:
        return self.codes is None or code in self.codes


class ModuleContext:
    """Everything rules need to know about one parsed module."""

    def __init__(self, rel_path: str, source: str) -> None:
        self.rel_path = str(PurePosixPath(rel_path))
        self.source = source
        self.lines = source.splitlines()
        self.tree: ast.Module | None = None
        self.syntax_error: SyntaxError | None = None
        try:
            self.tree = ast.parse(source)
        except SyntaxError as exc:
            self.syntax_error = exc
        self.aliases: dict[str, str] = {}
        self.parents: dict[int, ast.AST] = {}
        if self.tree is not None:
            self._collect_imports(self.tree)
            self._collect_parents(self.tree)
        self.suppressions: list[Suppression] = self._collect_suppressions()

    # ------------------------------------------------------------ path flags

    @property
    def is_test(self) -> bool:
        """Under ``tests/`` (or a conftest/test_* file anywhere)."""
        parts = PurePosixPath(self.rel_path).parts
        name = parts[-1] if parts else ""
        return (
            "tests" in parts
            or name.startswith("test_")
            or name == "conftest.py"
        )

    @property
    def in_src(self) -> bool:
        """Part of the shipped ``src/repro`` package tree."""
        return self.rel_path.startswith("src/repro/")

    @property
    def timing_allowlisted(self) -> bool:
        """May read wall clocks (runner/, PhaseTimer) without DET002."""
        return self.rel_path in TIMING_ALLOWLIST_FILES or any(
            self.rel_path.startswith(prefix + "/")
            for prefix in TIMING_ALLOWLIST_DIRS
        )

    @property
    def control_plane(self) -> bool:
        """Inside the serve/simulation trees DET006 protects (seams exempt)."""
        if self.rel_path in CONTROL_PLANE_SEAM_FILES:
            return False
        return any(
            self.rel_path.startswith(prefix + "/")
            for prefix in CONTROL_PLANE_DIRS
        )

    @property
    def numeric_hot_path(self) -> bool:
        """Inside the queueing/sizing modules NUM001 protects."""
        return self.rel_path in NUMERIC_HOT_PATH_FILES or any(
            self.rel_path.startswith(prefix + "/")
            for prefix in NUMERIC_HOT_PATHS
        )

    # ------------------------------------------------------------ navigation

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(id(node))

    def source_line(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    # ------------------------------------------------------- name resolution

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted qualified name of a Name/Attribute chain, alias-resolved.

        ``np.random.rand`` with ``import numpy as np`` resolves to
        ``numpy.random.rand``; ``perf_counter`` with ``from time import
        perf_counter`` resolves to ``time.perf_counter``.  Returns ``None``
        for anything that is not a plain dotted chain (calls, subscripts).
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(self.aliases.get(node.id, node.id))
        return ".".join(reversed(parts))

    def _collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        # ``import a.b`` binds ``a`` to the top package.
                        top = alias.name.split(".")[0]
                        self.aliases.setdefault(top, top)
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def _collect_parents(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            for child in ast.iter_child_nodes(node):
                self.parents[id(child)] = node

    # ----------------------------------------------------------- suppressions

    def _collect_suppressions(self) -> list[Suppression]:
        found = []
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(self.source).readline))
        except (tokenize.TokenError, SyntaxError, IndentationError):
            return []
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.match(token.string)
            if match is None:
                continue
            raw = match.group("codes")
            codes = None
            if raw is not None:
                codes = frozenset(
                    c.strip().upper() for c in raw.split(",") if c.strip()
                )
            found.append(Suppression(line=token.start[0], codes=codes))
        return found

    def suppression_for(self, line: int, code: str) -> Suppression | None:
        """The suppression covering ``code`` on ``line``, if any."""
        for suppression in self.suppressions:
            if suppression.line == line and suppression.covers(code):
                return suppression
        return None


__all__ = [
    "ModuleContext",
    "Suppression",
    "TIMING_ALLOWLIST_DIRS",
    "TIMING_ALLOWLIST_FILES",
    "CONTROL_PLANE_DIRS",
    "CONTROL_PLANE_SEAM_FILES",
    "NUMERIC_HOT_PATHS",
    "NUMERIC_HOT_PATH_FILES",
]
