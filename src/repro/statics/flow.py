"""Interprocedural (whole-program) lint passes over the project graph.

Four rule families run here rather than in the per-file engine because
their evidence spans modules:

FLOW001
    Taint: a nondeterministic *value* source (wall clock outside the
    timing allowlist, unseeded RNG, ``os.urandom``, ``id()``) in a
    function from which a digest sink is reachable — in either taint
    direction.  *Argument direction*: the function transitively calls
    into sink-containing code, so the value can ride down as an
    argument.  *Return direction*: the function is reachable from a
    digest root (``canonical_json`` callers, ``summary()`` builders), so
    the value can ride back up in a return.  The finding renders the
    full source→sink call path.
ORD001
    Ordering: unsorted iteration over a set-typed local/parameter or a
    bare ``dict.keys()`` in a function on a digest path.  Set order
    varies with hash seeding; key order echoes insertion history.
CONC001
    Spawn-boundary shapes that cannot survive pickling but that the
    per-file PCK001 rule cannot see: bound methods, lambda-valued
    locals, lambdas hidden inside spawn arguments, ``functools.partial``
    wrappers thereof.  (Literal lambdas and same-file nested defs stay
    PCK001's.)
CONC002
    Module-global mutation reachable from a spawn worker entrypoint
    through high-confidence call edges.  Each spawned worker mutates its
    own copy of the module; state silently diverges across processes.

Every finding is attributed to the *source* site (the clock read, the
iteration, the mutation), carries the call path in both the message and
the structured ``trace`` field, and fingerprints on the source line — so
baselining and ``# repro: noqa`` behave exactly as for per-file rules.
"""

from __future__ import annotations

from repro.statics.findings import Finding
from repro.statics.graph import ProjectGraph


def _rule(code: str):
    from repro.statics.rules import PROJECT_RULES

    for rule in PROJECT_RULES:
        if rule.code == code:
            return rule
    raise KeyError(code)


def _shortest(paths: list[list[str]], graph: ProjectGraph) -> list[str]:
    return min(paths, key=lambda p: (len(p), [graph.label(k) for k in p]))


def _sink_description(graph: ProjectGraph, key: str) -> str:
    fn = graph.functions[key].summary
    if fn.sinks:
        names = sorted({sink["name"] for sink in fn.sinks})
        return f"{names[0]}()"
    return f"{fn.name}() digest payload"


def _digest_paths(
    graph: ProjectGraph,
    key: str,
    reach: dict[str, str | None],
    feed: dict[str, str | None],
) -> list[str] | None:
    """Shortest source-first call chain from ``key`` to a digest sink."""
    candidates = []
    if key in reach:
        candidates.append(graph.path_to_root(key, reach))
    if key in feed:
        candidates.append(graph.path_to_root(key, feed))
    if not candidates:
        return None
    return _shortest(candidates, graph)


def _flow_pass(
    graph: ProjectGraph,
    reach: dict[str, str | None],
    feed: dict[str, str | None],
) -> list[Finding]:
    rule = _rule("FLOW001")
    findings = []
    for key in sorted(graph.functions):
        node = graph.functions[key]
        sources = node.summary.sources
        if not sources:
            continue
        path = _digest_paths(graph, key, reach, feed)
        if path is None:
            continue
        trace = tuple(graph.label(step) for step in path)
        sink_desc = _sink_description(graph, path[-1])
        rendered = " -> ".join(trace)
        for source in sources:
            findings.append(
                Finding(
                    code=rule.code,
                    severity=rule.severity,
                    path=node.rel_path,
                    line=source["line"],
                    column=source["col"],
                    message=(
                        f"nondeterministic {source['kind']} source "
                        f"{source['name']}() can reach digest sink "
                        f"{sink_desc} [call path: {rendered}]"
                    ),
                    source_line=source["text"],
                    trace=trace,
                )
            )
    return findings


def _ord_pass(
    graph: ProjectGraph,
    reach: dict[str, str | None],
    feed: dict[str, str | None],
) -> list[Finding]:
    rule = _rule("ORD001")
    findings = []
    for key in sorted(graph.functions):
        node = graph.functions[key]
        sites = node.summary.ord_sites
        if not sites:
            continue
        path = _digest_paths(graph, key, reach, feed)
        if path is None:
            continue
        trace = tuple(graph.label(step) for step in path)
        sink_desc = _sink_description(graph, path[-1])
        rendered = " -> ".join(trace)
        for site in sites:
            findings.append(
                Finding(
                    code=rule.code,
                    severity=rule.severity,
                    path=node.rel_path,
                    line=site["line"],
                    column=site["col"],
                    message=(
                        f"unsorted iteration over {site['desc']} on a "
                        f"digest path to {sink_desc}; wrap it in sorted() "
                        f"[call path: {rendered}]"
                    ),
                    source_line=site["text"],
                    trace=trace,
                )
            )
    return findings


_CONC001_MESSAGES = {
    "bound-method": (
        "bound method .{name} passed to spawn {method}(); spawn pickles "
        "the callable together with its instance — pass a module-level "
        "function and explicit picklable params"
    ),
    "lambda-local": (
        "local {name!r} holds a lambda and is passed to spawn {method}(); "
        "lambdas do not pickle — use a module-level function"
    ),
    "lambda-argument": (
        "lambda inside the arguments of spawn {method}(); spawn pickles "
        "every parameter — pass plain data or module-level callables"
    ),
}


def _conc001_pass(graph: ProjectGraph) -> list[Finding]:
    rule = _rule("CONC001")
    findings = []
    for key in sorted(graph.functions):
        node = graph.functions[key]
        for site in node.summary.spawn_sites:
            for issue in site["issues"]:
                template = _CONC001_MESSAGES[issue["kind"]]
                message = template.format(
                    name=issue.get("name", "<lambda>"), method=site["method"]
                )
                findings.append(
                    Finding(
                        code=rule.code,
                        severity=rule.severity,
                        path=node.rel_path,
                        line=issue["line"],
                        column=issue["col"],
                        message=(
                            f"{message} [spawn site: "
                            f"{graph.label(key)}:{site['line']}]"
                        ),
                        source_line=issue["text"],
                    )
                )
    return findings


def _spawn_entrypoints(graph: ProjectGraph) -> dict[str, tuple[str, int]]:
    """Resolved worker entrypoints: entry key -> (spawn scope key, line)."""
    entries: dict[str, tuple[str, int]] = {}
    for key in sorted(graph.functions):
        node = graph.functions[key]
        for site in node.summary.spawn_sites:
            for ref in site["callables"]:
                if ref["kind"] != "named":
                    continue
                target = ref["target"]
                if "." in target:
                    resolved = graph._resolve_qualified(target)
                else:
                    local_key = f"{node.rel_path}::{target}"
                    resolved = (
                        [local_key] if local_key in graph.functions else []
                    )
                for entry in resolved:
                    entries.setdefault(entry, (key, site["line"]))
    return entries


def _conc002_pass(graph: ProjectGraph) -> list[Finding]:
    rule = _rule("CONC002")
    findings = []
    seen: set[tuple[str, int, str]] = set()
    entrypoints = _spawn_entrypoints(graph)
    for entry in sorted(entrypoints):
        spawn_scope, spawn_line = entrypoints[entry]
        closure = graph.worker_closure(entry)
        for fkey in sorted(closure):
            node = graph.functions[fkey]
            for mutation in node.summary.mutations:
                dedup = (node.rel_path, mutation["line"], mutation["name"])
                if dedup in seen:
                    continue
                seen.add(dedup)
                chain = list(reversed(graph.path_to_root(fkey, closure)))
                trace = tuple(graph.label(step) for step in chain)
                rendered = " -> ".join(trace)
                findings.append(
                    Finding(
                        code=rule.code,
                        severity=rule.severity,
                        path=node.rel_path,
                        line=mutation["line"],
                        column=mutation["col"],
                        message=(
                            f"mutation of module global {mutation['name']!r} "
                            f"is reachable from spawn worker entrypoint "
                            f"{graph.label(entry)} [call path: {rendered}; "
                            f"spawned at {graph.label(spawn_scope)}:"
                            f"{spawn_line}]; each worker mutates its own "
                            "process copy — move the state into task "
                            "params or returns"
                        ),
                        source_line=mutation["text"],
                        trace=trace,
                    )
                )
    return findings


def run_project_passes(graph: ProjectGraph) -> list[Finding]:
    """All interprocedural findings, deterministically ordered."""
    reach = graph.sink_reach()
    feed = graph.digest_feed()
    findings = (
        _flow_pass(graph, reach, feed)
        + _ord_pass(graph, reach, feed)
        + _conc001_pass(graph)
        + _conc002_pass(graph)
    )
    findings.sort(key=Finding.sort_key)
    return findings


__all__ = ["run_project_passes"]
