"""The HARMONY-specific lint rules (``harmonylint``).

Each rule subclasses :class:`Rule` and implements ``visit_<NodeType>``
methods that the engine's single-pass dispatcher calls while walking a
module's AST (see :mod:`repro.statics.engine`).  Rules report findings
through the walk object; scoping (src-only, test-exempt, allowlists) is
declared per rule via :meth:`Rule.applies` against the precomputed
:class:`~repro.statics.context.ModuleContext` flags.

The catalog (code — what it protects):

=========  ==============================================================
DET001     unseeded randomness → bit-identical serial/parallel sweeps
DET002     wall-clock reads outside runner//PhaseTimer → stable digests
DET003     unsorted set iteration → canonical JSON / JSONL ordering
DET004     float ``==``/``!=`` → Lemma 1 / Erlang boundary robustness
DET005     filesystem-order iteration → reproducible file discovery
DET006     raw clock/random in serve//simulation/ → injected seams only
ERR001     broad ``except`` swallowing → the repro.errors taxonomy
PCK001     lambdas/closures into spawn multiprocessing → picklable tasks
NUM001     unguarded division/log/sqrt in queueing/sizing hot paths
API001     mutable default arguments → no cross-call state leaks
SUP001     useless/unknown ``# repro: noqa`` suppressions
=========  ==============================================================

Four further families are *whole-program* passes implemented in
:mod:`repro.statics.flow` over the :mod:`repro.statics.graph` call graph
(their classes here carry the catalog metadata; ``Rule.project`` is
``True`` and they define no ``visit_*`` handlers):

=========  ==============================================================
FLOW001    nondeterministic sources reaching digest sinks (taint paths)
ORD001     unsorted set / dict.keys() iteration on a digest path
CONC001    unpicklable callables/params at spawn boundaries (cross-file)
CONC002    module-global mutation reachable from spawn workers
=========  ==============================================================
"""

from __future__ import annotations

import ast

from repro.errors import __all__ as _TAXONOMY_NAMES

from repro.statics.context import ModuleContext


class Rule:
    """Base class: one code, one severity, a set of ``visit_*`` handlers."""

    code: str = "XXX000"
    name: str = "rule"
    severity: str = "error"
    summary: str = ""
    rationale: str = ""
    #: Whole-program rules carry catalog metadata here but run in
    #: :mod:`repro.statics.flow`, not in the per-file AST walk.
    project: bool = False

    def applies(self, ctx: ModuleContext) -> bool:
        """Whether this rule runs on the module at all (path scoping)."""
        return True

    def start_module(self, ctx: ModuleContext) -> None:
        """Reset any per-module state before the walk begins."""


def _leaf_names(expr: ast.AST, ctx: ModuleContext):
    """Plain data-reference names under ``expr``.

    Skips attribute-chain roots (``math`` in ``math.pi``, ``self`` in
    ``self.x``) and function references (``f`` in ``f(x)``) so only names
    used *as values* count.
    """
    for node in ast.walk(expr):
        if not isinstance(node, ast.Name):
            continue
        parent = ctx.parent(node)
        if isinstance(parent, ast.Attribute) and parent.value is node:
            continue
        if isinstance(parent, ast.Call) and parent.func is node:
            continue
        yield node.id


# --------------------------------------------------------------------- DET001


_STDLIB_RANDOM_GLOBALS = frozenset(
    {
        "random", "randint", "randrange", "uniform", "choice", "choices",
        "sample", "shuffle", "gauss", "normalvariate", "expovariate",
        "betavariate", "gammavariate", "lognormvariate", "paretovariate",
        "weibullvariate", "triangular", "vonmisesvariate", "getrandbits",
        "randbytes", "seed",
    }
)

_NUMPY_LEGACY_GLOBALS = frozenset(
    {
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "choice", "shuffle", "permutation", "seed", "uniform",
        "normal", "standard_normal", "exponential", "poisson", "lognormal",
        "beta", "gamma", "binomial", "get_state", "set_state",
    }
)


class UnseededRandomness(Rule):
    code = "DET001"
    name = "unseeded-randomness"
    summary = "randomness must flow through an explicitly seeded generator"
    rationale = (
        "Serial/parallel scenario sweeps are digest-compared bit for bit; "
        "one draw from a global or unseeded RNG in src/repro makes the "
        "digest depend on process scheduling and import order."
    )

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.in_src and not ctx.is_test

    def visit_Call(self, node: ast.Call, walk) -> None:
        qualified = walk.ctx.resolve(node.func)
        if qualified is None:
            return
        if qualified == "random.Random" and not node.args and not node.keywords:
            walk.report(node, "random.Random() instantiated without a seed")
            return
        if qualified.startswith("random."):
            tail = qualified.split(".", 1)[1]
            if tail in _STDLIB_RANDOM_GLOBALS:
                walk.report(
                    node,
                    f"call to the process-global stdlib RNG ({qualified}); "
                    "use an explicitly seeded random.Random or "
                    "numpy default_rng(seed)",
                )
            return
        if qualified.startswith("numpy.random."):
            tail = qualified.rsplit(".", 1)[1]
            if tail in _NUMPY_LEGACY_GLOBALS:
                walk.report(
                    node,
                    f"legacy numpy global RNG ({qualified}); use "
                    "numpy.random.default_rng(seed) and pass the generator",
                )
                return
        if qualified.endswith("default_rng") and qualified.startswith("numpy"):
            has_seed = bool(node.args) or any(
                kw.arg == "seed" for kw in node.keywords
            )
            if not has_seed:
                walk.report(
                    node, "default_rng() without a seed argument"
                )


# --------------------------------------------------------------------- DET002


_CLOCK_CALLS = frozenset(
    {
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }
)


class WallClockRead(Rule):
    code = "DET002"
    name = "wall-clock-read"
    summary = "wall-clock reads only inside the timing allowlist"
    rationale = (
        "Scenario summaries are canonical-JSON digested; a clock read "
        "outside runner/ or simulation/timing.py (PhaseTimer) risks "
        "leaking wall time into digest-compared payloads."
    )

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.in_src and not ctx.timing_allowlisted

    def visit_Call(self, node: ast.Call, walk) -> None:
        qualified = walk.ctx.resolve(node.func)
        if qualified in _CLOCK_CALLS:
            walk.report(
                node,
                f"wall-clock read ({qualified}) outside the timing "
                "allowlist (runner/, simulation/timing.py)",
            )


# --------------------------------------------------------------------- DET003


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


class UnsortedSetIteration(Rule):
    code = "DET003"
    name = "unsorted-set-iteration"
    summary = "iterating a set without sorted() yields unstable order"
    rationale = (
        "Set iteration order varies with hash seeding; any set feeding "
        "ordered output (digests, JSONL, summaries) must go through "
        "sorted() first."
    )

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.in_src

    def visit_For(self, node: ast.For, walk) -> None:
        if _is_set_expr(node.iter):
            walk.report(
                node.iter,
                "for-loop over a set expression; wrap it in sorted() "
                "before it can feed ordered output",
            )

    def visit_comprehension(self, node: ast.comprehension, walk) -> None:
        if _is_set_expr(node.iter):
            walk.report(
                node.iter,
                "comprehension over a set expression; wrap it in sorted() "
                "before it can feed ordered output",
            )

    def visit_Call(self, node: ast.Call, walk) -> None:
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple")
            and node.args
            and _is_set_expr(node.args[0])
        ):
            walk.report(
                node,
                f"{node.func.id}() over a set expression freezes an "
                "unstable order; use sorted() instead",
            )


# --------------------------------------------------------------------- DET004


def _is_float_constant(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and type(node.value) is float


class FloatEquality(Rule):
    code = "DET004"
    name = "float-equality"
    summary = "no == / != against float literals outside tests"
    rationale = (
        "Exact float comparison makes branch selection depend on the last "
        "ulp of an upstream computation (the Erlang inversion and Lemma 1 "
        "rounding are exactly where that bites); use math.isclose or an "
        "epsilon guard."
    )

    def applies(self, ctx: ModuleContext) -> bool:
        return not ctx.is_test

    def visit_Compare(self, node: ast.Compare, walk) -> None:
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_float_constant(left) or _is_float_constant(right):
                walk.report(
                    node,
                    "float equality comparison; use math.isclose or an "
                    "explicit epsilon guard",
                )
                return


# --------------------------------------------------------------------- DET005


_FS_ORDER_CALLS = frozenset(
    {"os.listdir", "os.scandir", "os.walk", "glob.glob", "glob.iglob"}
)
_FS_ORDER_METHODS = frozenset({"iterdir", "glob", "rglob"})


class FilesystemOrder(Rule):
    code = "DET005"
    name = "filesystem-order"
    summary = "directory listings must be sorted before use"
    rationale = (
        "os.listdir/Path.glob order is filesystem-dependent; unsorted "
        "listings make trace discovery and report assembly "
        "machine-dependent."
    )

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.in_src

    def visit_Call(self, node: ast.Call, walk) -> None:
        ctx = walk.ctx
        qualified = ctx.resolve(node.func)
        is_fs = qualified in _FS_ORDER_CALLS
        if (
            not is_fs
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _FS_ORDER_METHODS
            and not (qualified and qualified.startswith(("glob.", "os.")))
        ):
            is_fs = True
        if not is_fs:
            return
        parent = ctx.parent(node)
        if (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id == "sorted"
        ):
            return
        walk.report(
            node,
            "filesystem-order iteration; wrap the listing in sorted() "
            "for reproducible discovery",
        )


# --------------------------------------------------------------------- DET006


#: Raw timing primitives the control plane must reach only through a
#: :class:`repro.serve.clock.Clock` — the DET002 set plus ``time.sleep``
#: (pacing through the seam is what makes ManualClock tests possible).
_CONTROL_CLOCK_CALLS = _CLOCK_CALLS | {"time.sleep"}


class ControlPlaneSeamBypass(Rule):
    code = "DET006"
    name = "control-plane-seam-bypass"
    summary = "serve//simulation/ code must use the injected Clock/rng seams"
    rationale = (
        "The online control plane's digests are bit-compared across "
        "crash/restore; a raw time.time()/datetime.now()/time.sleep() or "
        "any stdlib-random call (seeded or not) outside the Clock and "
        "seeded-generator seams makes live state diverge from its replay."
    )

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.control_plane

    def visit_Call(self, node: ast.Call, walk) -> None:
        qualified = walk.ctx.resolve(node.func)
        if qualified is None:
            return
        if qualified in _CONTROL_CLOCK_CALLS:
            walk.report(
                node,
                f"raw timing call ({qualified}) in control-plane code; "
                "inject a repro.serve.clock.Clock and use "
                "now()/monotonic()/sleep()",
            )
            return
        if qualified == "random.Random" or (
            qualified.startswith("random.")
            and qualified.split(".", 1)[1] in _STDLIB_RANDOM_GLOBALS
        ):
            walk.report(
                node,
                f"stdlib random call ({qualified}) in control-plane code; "
                "randomness must come in through config-seeded generators "
                "(numpy default_rng(seed)), never ad-hoc RNGs",
            )


# --------------------------------------------------------------------- ERR001


class BroadExceptSwallow(Rule):
    code = "ERR001"
    name = "broad-except-swallow"
    summary = "broad except must re-raise, examine, or map to repro.errors"
    rationale = (
        "except Exception: pass hides the failure from the supervisor, "
        "journal and degradation ladder; narrow the exception types or "
        "record a structured repro.errors code before falling back."
    )

    _taxonomy = frozenset(_TAXONOMY_NAMES)

    def visit_ExceptHandler(self, node: ast.ExceptHandler, walk) -> None:
        if not self._is_broad(node.type, walk.ctx):
            return
        body_nodes = [n for stmt in node.body for n in ast.walk(stmt)]
        if any(isinstance(n, ast.Raise) for n in body_nodes):
            return
        for n in body_nodes:
            if isinstance(n, ast.Name):
                if n.id in self._taxonomy:
                    return  # maps onto the structured taxonomy
                if node.name and n.id == node.name:
                    return  # the caught exception is examined/reported
            qualified = walk.ctx.resolve(n) if isinstance(n, ast.Attribute) else None
            if qualified and qualified.startswith("repro.errors."):
                return
        walk.report(
            node,
            "broad except swallows the failure; narrow the types or map "
            "it onto the repro.errors taxonomy (keeping the fallback)",
        )

    @staticmethod
    def _is_broad(type_node: ast.AST | None, ctx: ModuleContext) -> bool:
        if type_node is None:
            return True
        candidates = (
            type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
        )
        for candidate in candidates:
            name = ctx.resolve(candidate)
            if name in ("Exception", "BaseException"):
                return True
        return False


# --------------------------------------------------------------------- PCK001


_POOL_METHODS = frozenset(
    {
        "map", "map_async", "imap", "imap_unordered", "starmap",
        "starmap_async", "apply", "apply_async", "submit",
    }
)


class UnpicklableTask(Rule):
    code = "PCK001"
    name = "unpicklable-task"
    summary = "spawn entry points need module-level (picklable) callables"
    rationale = (
        "The runner uses the spawn context everywhere; spawn pickles the "
        "task callable, so lambdas and nested closures fail at runtime on "
        "exactly the platforms CI does not cover."
    )

    def visit_Call(self, node: ast.Call, walk) -> None:
        candidates: list[ast.AST] = []
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _POOL_METHODS
            and node.args
        ):
            candidates.append(node.args[0])
        qualified = walk.ctx.resolve(func)
        is_process = (qualified and qualified.endswith(".Process")) or (
            isinstance(func, ast.Name) and func.id == "Process"
        )
        if is_process:
            for keyword in node.keywords:
                if keyword.arg == "target":
                    candidates.append(keyword.value)
        for candidate in candidates:
            if isinstance(candidate, ast.Lambda):
                walk.report(
                    candidate,
                    "lambda handed to a spawn-based multiprocessing entry "
                    "point; spawn pickles the callable — use a "
                    "module-level task function",
                )
            elif isinstance(candidate, ast.Name) and self._is_nested_def(
                candidate.id, walk
            ):
                walk.report(
                    candidate,
                    f"nested function {candidate.id!r} handed to a "
                    "spawn-based multiprocessing entry point; closures do "
                    "not pickle — hoist it to module level",
                )

    @staticmethod
    def _is_nested_def(name: str, walk) -> bool:
        for scope in walk.scopes:
            for node in ast.walk(scope):
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node is not scope
                    and node.name == name
                ):
                    return True
        return False


# --------------------------------------------------------------------- NUM001


_GUARD_CALLS = frozenset(
    {"math.isfinite", "math.isnan", "numpy.isfinite", "numpy.isnan"}
)
_GUARD_BUILTINS = frozenset({"isfinite", "isnan", "max", "min", "abs"})
_RISKY_MATH = frozenset(
    {"math.log", "math.log2", "math.log10", "math.sqrt"}
)


class UnguardedNumerics(Rule):
    code = "NUM001"
    name = "unguarded-numerics"
    summary = "division/log/sqrt in hot paths need a guard on their inputs"
    rationale = (
        "The Erlang-C/M/G/N inversion is numerically touchy; a division "
        "or log/sqrt fed a raw, unexamined value turns one poisoned input "
        "into NaN container counts three calls later."
    )

    def __init__(self) -> None:
        self._guarded_cache: dict[int, frozenset[str]] = {}

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.numeric_hot_path

    def start_module(self, ctx: ModuleContext) -> None:
        self._guarded_cache = {}

    def visit_BinOp(self, node: ast.BinOp, walk) -> None:
        if isinstance(node.op, (ast.Div, ast.FloorDiv, ast.Mod)):
            self._check(node.right, node, "division denominator", walk)

    def visit_Call(self, node: ast.Call, walk) -> None:
        qualified = walk.ctx.resolve(node.func)
        if qualified in _RISKY_MATH and node.args:
            self._check(
                node.args[0], node, f"argument of {qualified}", walk
            )

    def _check(self, expr: ast.AST, site: ast.AST, what: str, walk) -> None:
        scope = next(
            (
                s
                for s in reversed(walk.scopes)
                if isinstance(s, (ast.FunctionDef, ast.AsyncFunctionDef))
            ),
            None,
        )
        if scope is None:
            return  # module-level constants are not hot-path inputs
        guarded = self._guarded(scope, walk.ctx)
        unguarded = sorted(
            {n for n in _leaf_names(expr, walk.ctx) if n not in guarded}
        )
        if unguarded:
            walk.report(
                site,
                f"{what} uses {', '.join(unguarded)} with no "
                "finiteness/range guard in this function",
            )

    def _guarded(self, scope: ast.AST, ctx: ModuleContext) -> frozenset[str]:
        cached = self._guarded_cache.get(id(scope))
        if cached is not None:
            return cached
        guarded: set[str] = set()
        nodes = list(ast.walk(scope))
        for node in nodes:
            if isinstance(node, ast.Compare):
                guarded.update(_leaf_names(node, ctx))
            elif isinstance(node, ast.Assert):
                guarded.update(_leaf_names(node.test, ctx))
            elif isinstance(node, ast.Call):
                qualified = ctx.resolve(node.func)
                is_guard = qualified in _GUARD_CALLS or (
                    isinstance(node.func, ast.Name)
                    and node.func.id in _GUARD_BUILTINS
                )
                if is_guard:
                    for arg in node.args:
                        guarded.update(_leaf_names(arg, ctx))
            elif isinstance(node, ast.For):
                # range() targets are integers by construction.
                if (
                    isinstance(node.iter, ast.Call)
                    and isinstance(node.iter.func, ast.Name)
                    and node.iter.func.id == "range"
                ):
                    guarded.update(
                        n.id
                        for n in ast.walk(node.target)
                        if isinstance(n, ast.Name)
                    )
        # Taint propagation: a value computed only from guarded names (or
        # constants) is itself considered examined.  Fixpoint because
        # assignments can appear in any order across branches.
        assigns = [
            node
            for node in nodes
            if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign))
        ]
        changed = True
        while changed:
            changed = False
            for assign in assigns:
                value = getattr(assign, "value", None)
                if value is None:
                    continue
                leaves = set(_leaf_names(value, ctx))
                if not leaves <= guarded:
                    continue
                if isinstance(assign, ast.Assign):
                    targets = assign.targets
                else:
                    targets = [assign.target]
                for target in targets:
                    for name_node in ast.walk(target):
                        if (
                            isinstance(name_node, ast.Name)
                            and name_node.id not in guarded
                        ):
                            guarded.add(name_node.id)
                            changed = True
        result = frozenset(guarded)
        self._guarded_cache[id(scope)] = result
        return result


# --------------------------------------------------------------------- API001


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("list", "dict", "set", "bytearray")
    )


class MutableDefaultArgument(Rule):
    code = "API001"
    name = "mutable-default-argument"
    summary = "no mutable default arguments"
    rationale = (
        "A mutable default is shared across calls (and across scenarios "
        "within one worker), leaking state between runs that must stay "
        "independent."
    )

    def visit_FunctionDef(self, node: ast.FunctionDef, walk) -> None:
        self._check(node.args, walk)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef, walk) -> None:
        self._check(node.args, walk)

    def visit_Lambda(self, node: ast.Lambda, walk) -> None:
        self._check(node.args, walk)

    def _check(self, args: ast.arguments, walk) -> None:
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_literal(default):
                walk.report(
                    default,
                    "mutable default argument is shared across calls; "
                    "default to None and construct inside the function",
                )


# --------------------------------------------------- whole-program rules


class ProjectRule(Rule):
    """Marker base for rules implemented in :mod:`repro.statics.flow`."""

    project = True


class TaintedDigestFlow(ProjectRule):
    code = "FLOW001"
    name = "tainted-digest-flow"
    summary = "nondeterministic sources must not reach digest sinks"
    rationale = (
        "Per-file rules see one module; the flows that actually corrupt "
        "digests cross modules.  A wall-clock read, unseeded RNG, "
        "os.urandom or id() in a function from which canonical_json, "
        "summary_digest, fleet_digest or a journal writer is reachable "
        "(as an argument flowing down, or a return value flowing back up "
        "into a summary() payload) makes the digest depend on scheduling, "
        "hash seeds or process identity.  The finding carries the full "
        "source→sink call path."
    )


class UnsortedDigestIteration(ProjectRule):
    code = "ORD001"
    name = "unsorted-digest-iteration"
    summary = "set / dict.keys() iteration on digest paths must be sorted"
    rationale = (
        "DET003 catches iteration over set *expressions*; this pass "
        "follows set-typed locals/params and bare dict.keys() through "
        "the call graph, and flags them only on paths that feed a digest "
        "sink or journal line — where iteration order becomes bytes."
    )


class SpawnBoundaryCallable(ProjectRule):
    code = "CONC001"
    name = "spawn-boundary-callable"
    summary = "spawn boundaries need module-level callables and params"
    rationale = (
        "PCK001 flags literal lambdas and same-file closures; this pass "
        "covers the shapes it cannot see — bound methods of stateful "
        "objects, lambda-valued locals, lambdas hidden in spawn "
        "arguments, functools.partial wrappers — all of which fail to "
        "pickle exactly on the spawn-context platforms CI does not run."
    )


class WorkerGlobalMutation(ProjectRule):
    code = "CONC002"
    name = "worker-global-mutation"
    severity = "warning"
    summary = "spawn workers must not mutate module-global state"
    rationale = (
        "A module global mutated in a worker's call closure is mutated "
        "per process: every spawn worker sees (and changes) its own "
        "copy, the parent sees none of it, and resume/replay sees a "
        "third state.  Worker state belongs in task params and returns."
    )


# --------------------------------------------------------------------- SUP001


class UselessSuppression(Rule):
    """Engine-level rule: emitted after the walk, not during it.

    The engine compares every ``# repro: noqa`` comment against the
    findings it actually suppressed; unknown codes and suppressions that
    matched nothing are reported so stale escapes cannot accumulate.
    SUP001 findings are themselves exempt from suppression.
    """

    code = "SUP001"
    name = "useless-suppression"
    severity = "warning"
    summary = "every noqa must name known codes and suppress something"
    rationale = (
        "Stale suppressions are silent holes in the determinism "
        "guarantees; a noqa that no longer matches a finding must be "
        "deleted (or its code fixed)."
    )


#: All rule classes, in catalog order.
ALL_RULES: tuple[type[Rule], ...] = (
    UnseededRandomness,
    WallClockRead,
    UnsortedSetIteration,
    FloatEquality,
    FilesystemOrder,
    ControlPlaneSeamBypass,
    BroadExceptSwallow,
    UnpicklableTask,
    UnguardedNumerics,
    MutableDefaultArgument,
    TaintedDigestFlow,
    UnsortedDigestIteration,
    SpawnBoundaryCallable,
    WorkerGlobalMutation,
    UselessSuppression,
)

#: The whole-program rules, in catalog order (metadata singletons).
PROJECT_RULES: tuple[Rule, ...] = tuple(
    rule() for rule in ALL_RULES if rule.project
)

#: Known rule codes (includes SYN000, the engine's parse-failure code).
KNOWN_CODES = frozenset(
    {rule.code for rule in ALL_RULES} | {"SYN000"}
)


def default_rules() -> list[Rule]:
    """Fresh instances of every per-file rule, in catalog order."""
    return [rule() for rule in ALL_RULES if not rule.project]


__all__ = [
    "Rule",
    "ProjectRule",
    "UnseededRandomness",
    "WallClockRead",
    "UnsortedSetIteration",
    "FloatEquality",
    "FilesystemOrder",
    "ControlPlaneSeamBypass",
    "BroadExceptSwallow",
    "UnpicklableTask",
    "UnguardedNumerics",
    "MutableDefaultArgument",
    "TaintedDigestFlow",
    "UnsortedDigestIteration",
    "SpawnBoundaryCallable",
    "WorkerGlobalMutation",
    "UselessSuppression",
    "ALL_RULES",
    "PROJECT_RULES",
    "KNOWN_CODES",
    "default_rules",
]
