"""``repro.statics`` — harmonylint, the project's static-analysis suite.

An AST-based lint engine with HARMONY-specific rules: every guarantee the
runtime test layers enforce after the fact (bit-identical sweeps,
canonical-JSON digests, the structured error taxonomy, picklable spawn
tasks, numerically guarded queueing math) has a rule that catches the
violation before it runs.  See ``docs/static-analysis.md`` for the rule
catalog and workflow, and ``repro lint --help`` for the CLI.

Public surface::

    from repro.statics import lint_paths, LintEngine, default_rules
    report = lint_paths(["src"], root=".")
    for finding in report.findings:
        print(finding.format_text())
"""

from repro.statics.baseline import (
    BASELINE_VERSION,
    Baseline,
    BaselineEntry,
    BaselineError,
    DEFAULT_BASELINE_NAME,
    build_baseline,
    load_baseline,
    save_baseline,
)
from repro.statics.cache import AnalysisCache, CACHE_VERSION, DEFAULT_CACHE_NAME
from repro.statics.context import ModuleContext, Suppression
from repro.statics.engine import (
    EXCLUDED_DIRS,
    FileAnalysis,
    LintEngine,
    LintReport,
    analyze_source,
    lint_paths,
)
from repro.statics.findings import Finding, SEVERITIES
from repro.statics.graph import ProjectGraph, build_graph, summarize_module
from repro.statics.rules import (
    ALL_RULES,
    KNOWN_CODES,
    PROJECT_RULES,
    Rule,
    default_rules,
)
from repro.statics.sarif import to_sarif

__all__ = [
    "ALL_RULES",
    "AnalysisCache",
    "BASELINE_VERSION",
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "CACHE_VERSION",
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_CACHE_NAME",
    "EXCLUDED_DIRS",
    "FileAnalysis",
    "Finding",
    "KNOWN_CODES",
    "LintEngine",
    "LintReport",
    "ModuleContext",
    "PROJECT_RULES",
    "ProjectGraph",
    "Rule",
    "SEVERITIES",
    "Suppression",
    "analyze_source",
    "build_baseline",
    "build_graph",
    "default_rules",
    "lint_paths",
    "load_baseline",
    "save_baseline",
    "summarize_module",
    "to_sarif",
]
