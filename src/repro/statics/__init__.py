"""``repro.statics`` — harmonylint, the project's static-analysis suite.

An AST-based lint engine with HARMONY-specific rules: every guarantee the
runtime test layers enforce after the fact (bit-identical sweeps,
canonical-JSON digests, the structured error taxonomy, picklable spawn
tasks, numerically guarded queueing math) has a rule that catches the
violation before it runs.  See ``docs/static-analysis.md`` for the rule
catalog and workflow, and ``repro lint --help`` for the CLI.

Public surface::

    from repro.statics import lint_paths, LintEngine, default_rules
    report = lint_paths(["src"], root=".")
    for finding in report.findings:
        print(finding.format_text())
"""

from repro.statics.baseline import (
    BASELINE_VERSION,
    Baseline,
    BaselineEntry,
    BaselineError,
    DEFAULT_BASELINE_NAME,
    build_baseline,
    load_baseline,
    save_baseline,
)
from repro.statics.context import ModuleContext, Suppression
from repro.statics.engine import EXCLUDED_DIRS, LintEngine, LintReport, lint_paths
from repro.statics.findings import Finding, SEVERITIES
from repro.statics.rules import ALL_RULES, KNOWN_CODES, Rule, default_rules

__all__ = [
    "ALL_RULES",
    "BASELINE_VERSION",
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "DEFAULT_BASELINE_NAME",
    "EXCLUDED_DIRS",
    "Finding",
    "KNOWN_CODES",
    "LintEngine",
    "LintReport",
    "ModuleContext",
    "Rule",
    "SEVERITIES",
    "Suppression",
    "build_baseline",
    "default_rules",
    "lint_paths",
    "load_baseline",
    "save_baseline",
]
