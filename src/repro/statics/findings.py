"""Finding model for the ``harmonylint`` static-analysis suite.

A :class:`Finding` is one rule violation at one source location.  Findings
are plain, hashable data so the engine can sort, deduplicate, suppress and
baseline them without touching the AST again, and so ``--format json``
output is a direct serialization of the same objects the text formatter
prints.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

#: Severity levels, most severe first (used for ordering in reports).
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    code:
        Stable rule identifier (``DET001``, ``ERR001``, ...).  ``SYN000``
        is reserved for files the engine could not parse.
    severity:
        ``"error"`` or ``"warning"``; informational — both fail the build
        unless baselined or suppressed.
    path:
        Root-relative POSIX path of the offending file.
    line / column:
        1-based line and 0-based column of the offending node.
    message:
        Human-readable description of the violation.
    source_line:
        The stripped text of the offending source line, used for
        line-number-independent baseline fingerprints.
    trace:
        For interprocedural findings (FLOW001, CONC002, ORD001): the
        source→sink call path as a tuple of ``module.qualname`` steps,
        source end first.  Empty for single-site findings.
    """

    code: str
    severity: str
    path: str
    line: int
    column: int
    message: str
    source_line: str = ""
    trace: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    @property
    def fingerprint(self) -> str:
        """Location-content fingerprint, independent of the line number.

        Hashes ``path``, ``code`` and the *text* of the offending line, so
        a baselined finding keeps matching when unrelated edits shift it up
        or down the file, but stops matching (and must be re-justified or
        fixed) when the offending line itself changes.
        """
        body = f"{self.path}::{self.code}::{self.source_line}"
        return hashlib.sha256(body.encode()).hexdigest()[:16]

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.column, self.code)

    def format_text(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.column + 1}: "
            f"{self.code} [{self.severity}] {self.message}"
        )

    def to_dict(self) -> dict:
        """JSON-ready representation (the ``--format json`` schema).

        ``trace`` appears only on interprocedural findings so the
        single-site schema stays byte-compatible with v1 consumers.
        """
        payload = {
            "code": self.code,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }
        if self.trace:
            payload["trace"] = list(self.trace)
        return payload

    def to_payload(self) -> dict:
        """Full lossless serialization (the analysis-cache wire form)."""
        return {
            "code": self.code,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "source_line": self.source_line,
            "trace": list(self.trace),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Finding":
        return cls(
            code=payload["code"],
            severity=payload["severity"],
            path=payload["path"],
            line=payload["line"],
            column=payload["column"],
            message=payload["message"],
            source_line=payload.get("source_line", ""),
            trace=tuple(payload.get("trace", ())),
        )


__all__ = ["Finding", "SEVERITIES"]
