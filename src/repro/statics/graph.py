"""Project-wide symbol table and call graph for harmonylint.

Per-file analysis (:mod:`repro.statics.rules`) can only see one module;
the failure modes that actually threaten the repo's determinism
guarantees are cross-module — an unseeded RNG three calls upstream of
``canonical_json``, a closure slipping into a spawn pool, an unsorted set
feeding a digest payload.  This module extracts a compact, cacheable
:class:`ModuleSummary` from each file (function definitions, resolved
call references, nondeterministic source sites, digest-sink calls,
spawn-boundary sites, module-global mutations) and assembles summaries
into a :class:`ProjectGraph` the interprocedural passes in
:mod:`repro.statics.flow` walk.

Resolution is deliberately conservative, in layers of confidence:

- ``project``/``local``/``self_method``/``typed`` references (imports,
  same-module defs, ``self.m()``, locals/attributes whose constructor is
  visible) resolve to exact symbols — *high-confidence* edges.
- bare ``obj.m()`` method calls resolve by name to **every** project
  method called ``m`` — *low-confidence* edges.  Generic collection /
  protocol names (``append``, ``get``, ``items``, ...) are excluded from
  this matching: linking every ``list.append`` to ``JournalWriter.append``
  would drown the taint passes in false paths.  The journal/checkpoint
  writers are still covered because their own bodies contain the precise
  digest-sink calls.

Summaries are plain dicts end to end (``to_dict``/``from_dict``) so the
incremental cache (:mod:`repro.statics.cache`) can persist them as JSON.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from pathlib import PurePosixPath

from repro.statics.context import ModuleContext

#: Module-level functions whose call sites are digest sinks: anything
#: passed into them lands in a canonical-JSON digest, a journal line or a
#: checkpoint.  Matched by the final dotted-name segment so every import
#: style (module call, re-export, ``from ... import``) resolves.
DIGEST_SINK_NAMES = frozenset(
    {
        "canonical_json",
        "summary_digest",
        "fleet_digest",
        "record_digest",
        "write_journal_record",
    }
)

#: Methods whose *return value* is a digest payload by repo convention:
#: every ``summary()`` in src/repro feeds ``summary_digest`` downstream.
DIGEST_ROOT_METHODS = frozenset({"summary"})

#: Method names excluded from conservative bare-name matching.  These are
#: overwhelmingly builtin-collection protocol calls; matching them against
#: same-named project methods would connect nearly every function to
#: nearly every other and bury real taint paths in noise.
GENERIC_METHOD_NAMES = frozenset(
    {
        "append", "add", "get", "pop", "update", "extend", "insert",
        "remove", "discard", "clear", "copy", "count", "index", "sort",
        "reverse", "setdefault", "popitem", "items", "keys", "values",
        "join", "split", "strip", "read", "write", "close", "open",
        "encode", "decode", "format", "startswith", "endswith", "lower",
        "upper", "replace",
    }
)

#: Collection mutators: called on a module-level name from worker-reachable
#: code they constitute cross-process-invisible global state (CONC002).
MUTATOR_METHODS = frozenset(
    {
        "append", "add", "update", "extend", "insert", "pop", "remove",
        "discard", "clear", "setdefault", "popitem",
    }
)

#: Spawn-boundary entry points (mirrors PCK001's pool-method set).
POOL_METHODS = frozenset(
    {
        "map", "map_async", "imap", "imap_unordered", "starmap",
        "starmap_async", "apply", "apply_async", "submit",
    }
)

_CLOCK_SOURCES = frozenset(
    {
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }
)

_STDLIB_RANDOM_GLOBALS = frozenset(
    {
        "random", "randint", "randrange", "uniform", "choice", "choices",
        "sample", "shuffle", "gauss", "normalvariate", "expovariate",
        "betavariate", "gammavariate", "lognormvariate", "paretovariate",
        "weibullvariate", "triangular", "vonmisesvariate", "getrandbits",
        "randbytes",
    }
)

_NUMPY_LEGACY_GLOBALS = frozenset(
    {
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "choice", "shuffle", "permutation", "uniform",
        "normal", "standard_normal", "exponential", "poisson", "lognormal",
        "beta", "gamma", "binomial",
    }
)

_ENTROPY_SOURCES = frozenset(
    {"os.urandom", "uuid.uuid1", "uuid.uuid4", "secrets.token_bytes",
     "secrets.token_hex", "secrets.token_urlsafe", "secrets.randbelow",
     "secrets.choice"}
)

#: Pseudo-function holding a module's top-level statements.
MODULE_BODY = "<module>"


def module_dotted_name(rel_path: str) -> str | None:
    """Dotted import name for a src-tree file (``None`` outside src/)."""
    parts = PurePosixPath(rel_path).parts
    if len(parts) < 2 or parts[0] != "src" or not rel_path.endswith(".py"):
        return None
    dotted = list(parts[1:])
    dotted[-1] = dotted[-1][: -len(".py")]
    if dotted[-1] == "__init__":
        dotted.pop()
    return ".".join(dotted) if dotted else None


# --------------------------------------------------------------- site records


def _record(**kwargs) -> dict:
    """Sites are stored as plain dicts so summaries round-trip as JSON."""
    return dict(kwargs)


@dataclass
class FunctionSummary:
    """One function (or the module body) as the graph sees it."""

    qualname: str
    name: str
    lineno: int
    col: int = 0
    is_method: bool = False
    is_nested: bool = False
    class_name: str | None = None
    calls: list[dict] = field(default_factory=list)
    sources: list[dict] = field(default_factory=list)
    sinks: list[dict] = field(default_factory=list)
    ord_sites: list[dict] = field(default_factory=list)
    spawn_sites: list[dict] = field(default_factory=list)
    mutations: list[dict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "lineno": self.lineno,
            "col": self.col,
            "is_method": self.is_method,
            "is_nested": self.is_nested,
            "class_name": self.class_name,
            "calls": self.calls,
            "sources": self.sources,
            "sinks": self.sinks,
            "ord_sites": self.ord_sites,
            "spawn_sites": self.spawn_sites,
            "mutations": self.mutations,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FunctionSummary":
        return cls(**payload)


@dataclass
class ModuleSummary:
    """Everything the project graph needs to know about one file."""

    rel_path: str
    module: str | None
    is_test: bool
    in_src: bool
    functions: list[FunctionSummary] = field(default_factory=list)
    #: Project-internal imports as dotted module names (cache invalidation
    #: expands changes transitively through this graph).
    imports: list[str] = field(default_factory=list)
    #: Names bound by module-level assignments (CONC002 mutation targets).
    module_globals: list[str] = field(default_factory=list)
    #: ``self.<attr> = ClassRef(...)`` bindings per class, for typed
    #: method resolution: {class_name: {attr: class_ref}}.
    attr_types: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "rel_path": self.rel_path,
            "module": self.module,
            "is_test": self.is_test,
            "in_src": self.in_src,
            "functions": [fn.to_dict() for fn in self.functions],
            "imports": self.imports,
            "module_globals": self.module_globals,
            "attr_types": self.attr_types,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ModuleSummary":
        payload = dict(payload)
        payload["functions"] = [
            FunctionSummary.from_dict(fn) for fn in payload["functions"]
        ]
        return cls(**payload)


# ------------------------------------------------------------- extraction


class _Extractor(ast.NodeVisitor):
    """Single pass over one module: functions, calls, sites, mutations."""

    def __init__(self, ctx: ModuleContext, summary: ModuleSummary):
        self.ctx = ctx
        self.summary = summary
        self.class_stack: list[str] = []
        self.func_stack: list[FunctionSummary] = []
        #: Local names assigned per active function frame (innermost last);
        #: used to distinguish locals from module globals and to track
        #: lambda-valued and set-valued locals.
        self.locals_stack: list[set[str]] = []
        self.global_decls_stack: list[set[str]] = []
        self.lambda_locals_stack: list[set[str]] = []
        self.set_locals_stack: list[set[str]] = []
        self.local_types_stack: list[dict[str, str]] = []
        self.local_defs_stack: list[set[str]] = []
        self.module_fn = FunctionSummary(
            qualname=MODULE_BODY, name=MODULE_BODY, lineno=1
        )
        summary.functions.append(self.module_fn)
        self._source_allowlisted = (
            ctx.timing_allowlisted
            or ctx.rel_path
            in (
                "src/repro/serve/clock.py",
                "src/repro/simulation/timing.py",
            )
        )

    # -------------------------------------------------------------- helpers

    @property
    def fn(self) -> FunctionSummary:
        return self.func_stack[-1] if self.func_stack else self.module_fn

    def _text(self, node: ast.AST) -> str:
        return self.ctx.source_line(getattr(node, "lineno", 1))

    def _is_local(self, name: str) -> bool:
        return any(name in frame for frame in self.locals_stack)

    def _local_type(self, name: str) -> str | None:
        for frame in reversed(self.local_types_stack):
            if name in frame:
                return frame[name]
        return None

    def _rooted_in_import(self, node: ast.AST) -> bool:
        """Whether an attribute chain hangs off an imported name."""
        while isinstance(node, ast.Attribute):
            node = node.value
        return isinstance(node, ast.Name) and node.id in self.ctx.aliases

    def _class_ref(self, node: ast.AST) -> str | None:
        """Dotted reference when ``node`` looks like a class constructor."""
        qualified = self.ctx.resolve(node)
        if qualified is None:
            return None
        tail = qualified.rsplit(".", 1)[-1]
        if tail[:1].isupper():
            return qualified
        return None

    # ------------------------------------------------------------ structure

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.class_stack.append(node.name)
        self.summary.attr_types.setdefault(node.name, {})
        self.generic_visit(node)
        self.class_stack.pop()

    def _enter_function(self, node) -> None:
        in_class = bool(self.class_stack) and not self.func_stack
        prefix = ""
        if self.func_stack:
            prefix = self.func_stack[-1].qualname + "."
        elif self.class_stack:
            prefix = ".".join(self.class_stack) + "."
        fn = FunctionSummary(
            qualname=prefix + node.name,
            name=node.name,
            lineno=node.lineno,
            col=node.col_offset,
            is_method=in_class,
            is_nested=bool(self.func_stack),
            class_name=self.class_stack[-1] if in_class else None,
        )
        self.summary.functions.append(fn)
        if self.func_stack:
            self.local_defs_stack[-1].add(node.name)
        self.func_stack.append(fn)
        arg_names = {
            a.arg
            for a in (
                list(node.args.posonlyargs)
                + list(node.args.args)
                + list(node.args.kwonlyargs)
                + [node.args.vararg, node.args.kwarg]
            )
            if a is not None
        }
        self.locals_stack.append(set(arg_names))
        self.global_decls_stack.append(set())
        self.lambda_locals_stack.append(set())
        self.local_types_stack.append({})
        self.local_defs_stack.append(set())
        self.set_locals_stack.append(self._set_typed_params(node.args))

    @staticmethod
    def _set_typed_params(args: ast.arguments) -> set[str]:
        names: set[str] = set()
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            annotation = arg.annotation
            if isinstance(annotation, ast.Subscript):
                annotation = annotation.value
            if isinstance(annotation, ast.Name) and annotation.id in (
                "set", "frozenset", "Set", "FrozenSet",
            ):
                names.add(arg.arg)
        return names

    def _leave_function(self) -> None:
        self.func_stack.pop()
        self.locals_stack.pop()
        self.global_decls_stack.pop()
        self.lambda_locals_stack.pop()
        self.local_types_stack.pop()
        self.local_defs_stack.pop()
        self.set_locals_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)
        self.generic_visit(node)
        self._leave_function()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)
        self.generic_visit(node)
        self._leave_function()

    def visit_Global(self, node: ast.Global) -> None:
        if self.global_decls_stack:
            self.global_decls_stack[-1].update(node.names)

    # ---------------------------------------------------------- assignments

    @staticmethod
    def _is_set_expr(value: ast.AST) -> bool:
        if isinstance(value, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("set", "frozenset")
        )

    def _note_binding(self, target: ast.AST, value: ast.AST | None) -> None:
        if not isinstance(target, ast.Name):
            return
        name = target.id
        if self.func_stack:
            in_global = name in self.global_decls_stack[-1]
            if not in_global:
                self.locals_stack[-1].add(name)
                if isinstance(value, ast.Lambda):
                    self.lambda_locals_stack[-1].add(name)
                if value is not None and self._is_set_expr(value):
                    self.set_locals_stack[-1].add(name)
                if isinstance(value, ast.Call):
                    ref = self._class_ref(value.func)
                    if ref is not None:
                        self.local_types_stack[-1][name] = ref
        else:
            if name not in self.summary.module_globals:
                self.summary.module_globals.append(name)

    def _note_self_attr(self, target: ast.AST, value: ast.AST | None) -> None:
        if (
            self.class_stack
            and isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and isinstance(value, ast.Call)
        ):
            ref = self._class_ref(value.func)
            if ref is not None:
                self.summary.attr_types.setdefault(self.class_stack[-1], {})[
                    target.attr
                ] = ref

    def _note_mutation(self, target: ast.AST, node: ast.AST) -> None:
        """Record writes through module-level names (CONC002 raw data)."""
        if not self.func_stack:
            return
        base = target
        via_subscript = False
        while isinstance(base, (ast.Subscript, ast.Attribute)):
            base = base.value
            via_subscript = True
        if not isinstance(base, ast.Name):
            return
        name = base.id
        declared_global = name in self.global_decls_stack[-1]
        if base is target and not declared_global:
            return  # plain local rebind
        if via_subscript and (self._is_local(name) or name == "self"):
            return
        if via_subscript and name not in self.summary.module_globals:
            return
        self.fn.mutations.append(
            _record(
                name=name,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                text=self._text(node),
                via_global=declared_global,
            )
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._note_binding(target, node.value)
            self._note_self_attr(target, node.value)
            self._note_mutation(target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._note_binding(node.target, node.value)
        self._note_self_attr(node.target, node.value)
        if node.value is not None:
            self._note_mutation(node.target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._note_binding(node.target, node.value)
        self._note_mutation(node.target, node)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._note_binding(node.target, None)
        self._check_ord_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_ord_iter(node.iter)
        self.generic_visit(node)

    def _check_ord_iter(self, iter_node: ast.AST) -> None:
        """ORD001 raw data: unsorted set / dict.keys() iteration."""
        if (
            isinstance(iter_node, ast.Name)
            and any(iter_node.id in frame for frame in self.set_locals_stack)
        ):
            self.fn.ord_sites.append(
                _record(
                    desc=f"set {iter_node.id!r}",
                    line=iter_node.lineno,
                    col=iter_node.col_offset,
                    text=self._text(iter_node),
                )
            )
        elif (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Attribute)
            and iter_node.func.attr == "keys"
            and not iter_node.args
        ):
            self.fn.ord_sites.append(
                _record(
                    desc="dict.keys()",
                    line=iter_node.lineno,
                    col=iter_node.col_offset,
                    text=self._text(iter_node),
                )
            )

    # ---------------------------------------------------------------- calls

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name.split(".")[0] == "repro":
                if alias.name not in self.summary.imports:
                    self.summary.imports.append(alias.name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.module.split(".")[0] == "repro":
            if node.module not in self.summary.imports:
                self.summary.imports.append(node.module)

    def visit_Call(self, node: ast.Call) -> None:
        self._classify_call(node)
        self._check_source(node)
        self._check_sink(node)
        self._check_spawn(node)
        self.generic_visit(node)

    def _classify_call(self, node: ast.Call) -> None:
        func = node.func
        line = node.lineno
        if isinstance(func, ast.Name):
            name = func.id
            qualified = self.ctx.resolve(func)
            if qualified is not None and qualified != name:
                self.fn.calls.append(
                    _record(kind="qualified", target=qualified, line=line)
                )
            else:
                # Unaliased bare name: nested def, same-module def, or
                # builtin.  Candidate scopes are the enclosing *function*
                # qualnames (innermost first) — class bodies do not form
                # name scopes for calls.
                scopes = [
                    f"{frame.qualname}." for frame in reversed(self.func_stack)
                ] + [""]
                self.fn.calls.append(
                    _record(kind="local", name=name, line=line, scopes=scopes)
                )
            return
        if not isinstance(func, ast.Attribute):
            return
        if isinstance(func.value, ast.Name) and func.value.id in ("self", "cls"):
            self.fn.calls.append(
                _record(
                    kind="self_method",
                    name=func.attr,
                    class_name=self.class_stack[-1] if self.class_stack else None,
                    line=line,
                )
            )
            return
        # ``resolve`` echoes unknown roots verbatim ("pool.map" for a local
        # named ``pool``), so only an *imported* root makes the reference a
        # genuine qualified name; everything else falls through to the
        # typed-receiver and bare-method layers.
        if self._rooted_in_import(func):
            qualified = self.ctx.resolve(func)
            if qualified is not None:
                self.fn.calls.append(
                    _record(kind="qualified", target=qualified, line=line)
                )
                return
        if isinstance(func.value, ast.Name):
            ref = self._local_type(func.value.id)
            if ref is not None:
                self.fn.calls.append(
                    _record(kind="typed", class_ref=ref, name=func.attr,
                            line=line)
                )
                return
        if (
            isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "self"
            and self.class_stack
        ):
            attrs = self.summary.attr_types.get(self.class_stack[-1], {})
            ref = attrs.get(func.value.attr)
            if ref is not None:
                self.fn.calls.append(
                    _record(kind="typed", class_ref=ref, name=func.attr,
                            line=line)
                )
                return
        self.fn.calls.append(
            _record(kind="method", name=func.attr, line=line)
        )

    def _check_source(self, node: ast.Call) -> None:
        """FLOW001 raw data: nondeterministic value sources."""
        if self._source_allowlisted or self.ctx.is_test:
            return
        qualified = self.ctx.resolve(node.func)
        kind = None
        label = qualified
        if qualified is None:
            return
        if qualified in _CLOCK_SOURCES:
            kind = "wall-clock"
        elif qualified in _ENTROPY_SOURCES:
            kind = "entropy"
        elif qualified == "id":
            kind = "object-identity"
            label = "id"
        elif qualified == "random.Random" and not node.args and not node.keywords:
            kind = "unseeded-rng"
        elif (
            qualified.startswith("random.")
            and qualified.split(".", 1)[1] in _STDLIB_RANDOM_GLOBALS
        ):
            kind = "unseeded-rng"
        elif (
            qualified.startswith("numpy.random.")
            and qualified.rsplit(".", 1)[1] in _NUMPY_LEGACY_GLOBALS
        ):
            kind = "unseeded-rng"
        elif qualified.endswith("default_rng") and qualified.startswith("numpy"):
            has_seed = bool(node.args) or any(
                kw.arg == "seed" for kw in node.keywords
            )
            if not has_seed:
                kind = "unseeded-rng"
        if kind is not None:
            self.fn.sources.append(
                _record(
                    kind=kind,
                    name=label,
                    line=node.lineno,
                    col=node.col_offset,
                    text=self._text(node),
                )
            )

    def _check_sink(self, node: ast.Call) -> None:
        qualified = self.ctx.resolve(node.func)
        if qualified is None:
            return
        tail = qualified.rsplit(".", 1)[-1]
        if tail in DIGEST_SINK_NAMES:
            self.fn.sinks.append(_record(name=tail, line=node.lineno))

    # ------------------------------------------------------- spawn boundary

    @staticmethod
    def _pool_receiver(func: ast.Attribute) -> bool:
        """Whether the receiver of ``<obj>.map(...)`` looks like a pool.

        Method names like ``map``/``apply``/``submit`` are common on
        ordinary objects (``baseline.apply``, ``series.map``); requiring
        the receiver identifier to mention pool/executor keeps CONC001
        anchored to actual spawn boundaries.
        """
        receiver = func.value
        if isinstance(receiver, ast.Attribute):
            name = receiver.attr
        elif isinstance(receiver, ast.Name):
            name = receiver.id
        else:
            return False
        lowered = name.lower()
        return "pool" in lowered or "executor" in lowered

    def _check_spawn(self, node: ast.Call) -> None:
        func = node.func
        candidates: list[tuple[str, ast.AST]] = []
        method = None
        if (
            isinstance(func, ast.Attribute)
            and func.attr in POOL_METHODS
            and self._pool_receiver(func)
        ):
            method = func.attr
            if node.args:
                candidates.append(("callable", node.args[0]))
            for arg in node.args[1:]:
                candidates.append(("argument", arg))
        qualified = self.ctx.resolve(func)
        is_process = (qualified and qualified.endswith(".Process")) or (
            isinstance(func, ast.Name) and func.id == "Process"
        )
        if is_process:
            method = "Process"
            for keyword in node.keywords:
                if keyword.arg == "target":
                    candidates.append(("callable", keyword.value))
                elif keyword.arg == "args":
                    candidates.append(("argument", keyword.value))
        if method is None:
            return
        site = _record(
            method=method,
            line=node.lineno,
            col=node.col_offset,
            text=self._text(node),
            scope=self.fn.qualname,
            callables=[],
            issues=[],
        )
        for role, expr in candidates:
            self._inspect_spawn_operand(site, role, expr)
        if site["callables"] or site["issues"]:
            self.fn.spawn_sites.append(site)

    def _inspect_spawn_operand(self, site: dict, role: str, expr: ast.AST) -> None:
        if role == "argument":
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Lambda):
                    site["issues"].append(
                        _record(
                            kind="lambda-argument",
                            line=sub.lineno,
                            col=sub.col_offset,
                            text=self._text(sub),
                        )
                    )
            return
        # The callable position.
        if isinstance(expr, ast.Call):
            # functools.partial(f, ...): recurse into the wrapped callable.
            qualified = self.ctx.resolve(expr.func)
            if qualified in ("functools.partial", "partial") and expr.args:
                self._inspect_spawn_operand(site, "callable", expr.args[0])
                for arg in expr.args[1:]:
                    self._inspect_spawn_operand(site, "argument", arg)
                return
        if isinstance(expr, ast.Lambda):
            return  # PCK001 owns literal lambdas (per-file rule)
        if isinstance(expr, ast.Name):
            name = expr.id
            if any(name in frame for frame in self.local_defs_stack):
                return  # PCK001 owns same-file nested defs
            if any(name in frame for frame in self.lambda_locals_stack):
                site["issues"].append(
                    _record(
                        kind="lambda-local",
                        name=name,
                        line=expr.lineno,
                        col=expr.col_offset,
                        text=self._text(expr),
                    )
                )
                return
            if self._is_local(name):
                return  # opaque local callable: nothing provable
            qualified = self.ctx.resolve(expr)
            site["callables"].append(
                _record(kind="named", target=qualified or name,
                        line=expr.lineno)
            )
            return
        if isinstance(expr, ast.Attribute):
            # ``tasks.run_one`` (module attribute) is a picklable named
            # reference; ``self.work`` / ``runner.work`` (instance
            # attribute) is a bound method that drags its instance
            # through the pickle.
            root = expr
            while isinstance(root, ast.Attribute):
                root = root.value
            class_ref = (
                isinstance(root, ast.Name) and root.id[:1].isupper()
            )  # Cls.helper is a plain function, not a bound method
            if self._rooted_in_import(expr) or class_ref:
                qualified = self.ctx.resolve(expr)
                if qualified is not None:
                    site["callables"].append(
                        _record(
                            kind="named", target=qualified, line=expr.lineno
                        )
                    )
                    return
            site["issues"].append(
                _record(
                    kind="bound-method",
                    name=expr.attr,
                    line=expr.lineno,
                    col=expr.col_offset,
                    text=self._text(expr),
                )
            )


def _prescan(ctx: ModuleContext, summary: ModuleSummary) -> None:
    """First pass: module-level globals and ``self.attr = Class()`` types.

    Collected before the main walk so that definition order (a registry
    declared below its mutator, ``__init__`` defined after the method
    using the attribute) cannot hide a binding.
    """
    extractor = _Extractor.__new__(_Extractor)
    extractor.ctx = ctx  # only resolve() is needed below
    for stmt in ctx.tree.body:
        targets: list[ast.AST] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name) and (
                target.id not in summary.module_globals
            ):
                summary.module_globals.append(target.id)
    for stmt in ctx.tree.body:
        if not isinstance(stmt, ast.ClassDef):
            continue
        attrs = summary.attr_types.setdefault(stmt.name, {})
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and isinstance(node.value, ast.Call)
                ):
                    ref = _Extractor._class_ref(extractor, node.value.func)
                    if ref is not None:
                        attrs.setdefault(target.attr, ref)


def summarize_module(ctx: ModuleContext) -> ModuleSummary:
    """Extract the graph-facing summary of one parsed module."""
    summary = ModuleSummary(
        rel_path=ctx.rel_path,
        module=module_dotted_name(ctx.rel_path),
        is_test=ctx.is_test,
        in_src=ctx.in_src,
    )
    if ctx.tree is not None:
        _prescan(ctx, summary)
        _Extractor(ctx, summary).visit(ctx.tree)
    return summary


# ------------------------------------------------------------------- graph


@dataclass(frozen=True)
class FunctionNode:
    """A resolved symbol in the project graph."""

    key: str  # "<rel_path>::<qualname>"
    rel_path: str
    module: str | None
    summary: FunctionSummary
    is_test: bool
    in_src: bool

    @property
    def label(self) -> str:
        """Human-facing name: dotted module + qualname when available."""
        if self.module:
            return f"{self.module}.{self.summary.qualname}"
        return f"{self.rel_path}::{self.summary.qualname}"


class ProjectGraph:
    """Symbol table + call graph assembled from module summaries."""

    def __init__(self, summaries: list[ModuleSummary]):
        #: Graph membership: non-test modules only.  Test files still get
        #: per-file rules; routing taint through test helpers would only
        #: manufacture paths no production run ever takes.
        self.modules: dict[str, ModuleSummary] = {
            s.rel_path: s for s in summaries if not s.is_test
        }
        self.functions: dict[str, FunctionNode] = {}
        self._module_by_dotted: dict[str, str] = {}
        self._by_name: dict[str, list[str]] = {}
        self._by_class_method: dict[tuple[str, str], list[str]] = {}
        self._class_by_name: dict[str, list[str]] = {}
        for rel in sorted(self.modules):
            summary = self.modules[rel]
            if summary.module:
                self._module_by_dotted[summary.module] = rel
            for fn in summary.functions:
                key = f"{rel}::{fn.qualname}"
                self.functions[key] = FunctionNode(
                    key=key,
                    rel_path=rel,
                    module=summary.module,
                    summary=fn,
                    is_test=summary.is_test,
                    in_src=summary.in_src,
                )
                self._by_name.setdefault(fn.name, []).append(key)
                if fn.class_name:
                    self._by_class_method.setdefault(
                        (fn.class_name, fn.name), []
                    ).append(key)
            for cls in summary.attr_types:
                self._class_by_name.setdefault(cls, []).append(rel)
        self.edges: dict[str, list[tuple[str, bool]]] = {}
        self.reverse: dict[str, list[tuple[str, bool]]] = {}
        self._build_edges()

    # ------------------------------------------------------------ resolution

    def _resolve_qualified(self, qualified: str) -> list[str]:
        """Project keys for a dotted reference, by longest module prefix."""
        parts = qualified.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            rel = self._module_by_dotted.get(module)
            if rel is None:
                continue
            remainder = ".".join(parts[cut:])
            key = f"{rel}::{remainder}"
            if key in self.functions:
                return [key]
            # Re-exported name (package __init__): fall back to matching
            # the bare tail conservatively.
            tail = parts[-1]
            return self._resolve_bare_name(tail)
        return []

    def _resolve_bare_name(self, name: str) -> list[str]:
        if name in GENERIC_METHOD_NAMES:
            return []
        return sorted(self._by_name.get(name, ()))

    def _resolve_call(self, node: FunctionNode, call: dict) -> tuple[list[str], bool]:
        """Target keys plus a high-confidence flag for one call record."""
        kind = call["kind"]
        if kind == "local":
            for prefix in call.get("scopes", [""]):
                key = f"{node.rel_path}::{prefix}{call['name']}"
                if key in self.functions:
                    return [key], True
            return [], True
        if kind == "qualified":
            targets = self._resolve_qualified(call["target"])
            return targets, len(targets) == 1
        if kind == "self_method":
            cls = call.get("class_name")
            if cls:
                key = f"{node.rel_path}::{cls}.{call['name']}"
                if key in self.functions:
                    return [key], True
            return self._resolve_bare_name(call["name"]), False
        if kind == "typed":
            ref = call["class_ref"]
            cls = ref.rsplit(".", 1)[-1]
            targets = self._resolve_qualified(f"{ref}.{call['name']}")
            if targets:
                return targets, True
            exact = sorted(self._by_class_method.get((cls, call["name"]), ()))
            if exact:
                return exact, True
            return self._resolve_bare_name(call["name"]), False
        if kind == "method":
            return self._resolve_bare_name(call["name"]), False
        return [], False

    def _build_edges(self) -> None:
        for key in sorted(self.functions):
            node = self.functions[key]
            seen: dict[str, bool] = {}
            for call in node.summary.calls:
                targets, high = self._resolve_call(node, call)
                for target in targets:
                    if target == key:
                        continue
                    seen[target] = seen.get(target, False) or high
            self.edges[key] = sorted(seen.items())
        for key, outs in self.edges.items():
            for target, high in outs:
                self.reverse.setdefault(target, []).append((key, high))
        for target in self.reverse:
            self.reverse[target].sort()

    # ----------------------------------------------------------- reachability

    def sink_functions(self) -> list[str]:
        """Functions containing a direct digest-sink call."""
        return [
            key
            for key in sorted(self.functions)
            if self.functions[key].summary.sinks
        ]

    def digest_roots(self) -> list[str]:
        """Sink functions plus ``summary()`` methods (payload builders)."""
        roots = set(self.sink_functions())
        for key in sorted(self.functions):
            fn = self.functions[key].summary
            if fn.name in DIGEST_ROOT_METHODS and fn.is_method:
                roots.add(key)
        return sorted(roots)

    def _bfs(
        self, roots: list[str], adjacency: dict[str, list[tuple[str, bool]]]
    ) -> dict[str, str | None]:
        """Deterministic multi-source BFS; returns node -> predecessor."""
        parent: dict[str, str | None] = {root: None for root in sorted(roots)}
        queue = deque(sorted(roots))
        while queue:
            current = queue.popleft()
            for target, _high in adjacency.get(current, ()):
                if target not in parent:
                    parent[target] = current
                    queue.append(target)
        return parent

    def sink_reach(self) -> dict[str, str | None]:
        """Functions from which a digest-sink call is *reachable*
        (argument-direction taint): node -> next hop toward the sink."""
        return self._bfs(self.sink_functions(), self.reverse)

    def digest_feed(self) -> dict[str, str | None]:
        """Functions reachable *from* a digest root (return-direction
        taint): node -> caller hop back toward the root."""
        return self._bfs(self.digest_roots(), self.edges)

    def path_to_root(
        self, key: str, parents: dict[str, str | None]
    ) -> list[str]:
        """Chain from ``key`` back to its BFS root, inclusive."""
        chain = [key]
        while parents.get(chain[-1]) is not None:
            chain.append(parents[chain[-1]])
        return chain

    def worker_closure(self, entry: str) -> dict[str, str | None]:
        """High-confidence call closure of one spawn entrypoint."""
        parent: dict[str, str | None] = {entry: None}
        queue = deque([entry])
        while queue:
            current = queue.popleft()
            for target, high in self.edges.get(current, ()):
                if high and target not in parent:
                    parent[target] = current
                    queue.append(target)
        return parent

    def resolve_symbol(self, spec: str) -> list[str]:
        """Keys matching a ``--graph`` symbol spec.

        Accepts a full key (``path::qualname``), a dotted label suffix
        (``GuardedController.decide``), or a bare name.
        """
        if spec in self.functions:
            return [spec]
        matches = [
            key
            for key in sorted(self.functions)
            if self.functions[key].label.endswith(spec)
            and (
                self.functions[key].label == spec
                or self.functions[key].label[-len(spec) - 1] == "."
            )
        ]
        if matches:
            return matches
        return sorted(self._by_name.get(spec, ()))

    def label(self, key: str) -> str:
        node = self.functions.get(key)
        return node.label if node is not None else key


def build_graph(summaries: list[ModuleSummary]) -> ProjectGraph:
    """Assemble the project graph from per-module summaries."""
    return ProjectGraph(summaries)


__all__ = [
    "DIGEST_SINK_NAMES",
    "DIGEST_ROOT_METHODS",
    "GENERIC_METHOD_NAMES",
    "MODULE_BODY",
    "POOL_METHODS",
    "FunctionNode",
    "FunctionSummary",
    "ModuleSummary",
    "ProjectGraph",
    "build_graph",
    "module_dotted_name",
    "summarize_module",
]
