"""SARIF 2.1.0 emitter for harmonylint findings.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
is the interchange format GitHub code scanning (and most IDE problem
panes) ingest.  One run object carries the full rule catalog (so viewers
can show the rationale for each code) and one ``result`` per finding.

Two harmonylint-specific mappings:

- the baseline fingerprint travels in ``partialFingerprints`` under the
  key ``harmonylint/v1``, so code-scanning dedup follows the same
  line-number-independent identity as ``lint-baseline.json``;
- interprocedural findings (FLOW001/ORD001/CONC002) publish their
  source→sink call path both in the message and as a ``codeFlow`` whose
  thread-flow locations name each step's function label.
"""

from __future__ import annotations

from repro.statics.findings import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
FINGERPRINT_KEY = "harmonylint/v1"


def _rule_descriptor(rule) -> dict:
    descriptor = {
        "id": rule.code,
        "name": rule.name,
        "shortDescription": {"text": rule.summary or rule.name},
        "defaultConfiguration": {
            "level": "error" if rule.severity == "error" else "warning",
        },
        "properties": {"scope": "project" if rule.project else "file"},
    }
    if rule.rationale:
        descriptor["fullDescription"] = {"text": rule.rationale}
    return descriptor


def _location(finding: Finding) -> dict:
    return {
        "physicalLocation": {
            "artifactLocation": {
                "uri": finding.path,
                "uriBaseId": "SRCROOT",
            },
            "region": {
                "startLine": finding.line,
                "startColumn": finding.column + 1,
                "snippet": {"text": finding.source_line},
            },
        }
    }


def _code_flow(finding: Finding) -> dict:
    """The call path of an interprocedural finding as one thread flow.

    Only the first step has a precise location (the source site itself);
    later steps are named by function label — SARIF requires a location
    object per step, so they reuse the finding's artifact with the
    step label in the location message.
    """
    steps = []
    for index, label in enumerate(finding.trace):
        location = _location(finding) if index == 0 else {
            "physicalLocation": {
                "artifactLocation": {
                    "uri": finding.path,
                    "uriBaseId": "SRCROOT",
                }
            }
        }
        location = dict(location)
        location["message"] = {"text": label}
        steps.append({"location": location})
    return {"threadFlows": [{"locations": steps}]}


def _result(finding: Finding) -> dict:
    result = {
        "ruleId": finding.code,
        "level": "error" if finding.severity == "error" else "warning",
        "message": {"text": finding.message},
        "locations": [_location(finding)],
        "partialFingerprints": {FINGERPRINT_KEY: finding.fingerprint},
    }
    if finding.trace:
        result["codeFlows"] = [_code_flow(finding)]
    return result


def to_sarif(findings: list[Finding], *, root_uri: str | None = None) -> dict:
    """Render findings as a single-run SARIF 2.1.0 log object."""
    from repro.statics.rules import ALL_RULES

    run = {
        "tool": {
            "driver": {
                "name": "harmonylint",
                "informationUri": "docs/static-analysis.md",
                "rules": [
                    _rule_descriptor(rule_cls())
                    for rule_cls in ALL_RULES
                ],
            }
        },
        "columnKind": "unicodeCodePoints",
        "results": [_result(finding) for finding in findings],
    }
    if root_uri is not None:
        run["originalUriBaseIds"] = {"SRCROOT": {"uri": root_uri}}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [run],
    }


__all__ = ["FINGERPRINT_KEY", "SARIF_SCHEMA", "SARIF_VERSION", "to_sarif"]
