"""Run-time task labeling with progressive relabeling (Section V).

Task duration is unknown until a task finishes, so HARMONY initially labels
every arriving task *short* and upgrades the label to *long* once the task's
observed running time crosses its static class's split boundary.  The
:class:`RuntimeLabeler` tracks the live label of every in-flight task and
reports relabel events plus aggregate labeling-accuracy statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.classification.classifier import DurationCategory, TaskClass, TaskClassifier
from repro.trace.schema import Task


@dataclass(frozen=True)
class RelabelEvent:
    """A short->long label upgrade observed at ``time``."""

    task_uid: tuple[int, int]
    time: float
    old_class: TaskClass
    new_class: TaskClass


@dataclass
class _LiveTask:
    task: Task
    start_time: float
    label: TaskClass


@dataclass
class LabelerStats:
    """Aggregate labeling accuracy counters."""

    total_labeled: int = 0
    relabeled: int = 0
    finished: int = 0
    finished_correct: int = 0
    #: Total task-seconds spent carrying a label that disagrees with the
    #: clairvoyant label (the "error ... small and short-lived" claim).
    mislabel_seconds: float = 0.0

    @property
    def final_accuracy(self) -> float:
        """Fraction of finished tasks whose final label was correct."""
        if self.finished == 0:
            return 1.0
        return self.finished_correct / self.finished


class RuntimeLabeler:
    """Tracks and progressively corrects the class label of running tasks."""

    def __init__(self, classifier: TaskClassifier) -> None:
        self.classifier = classifier
        self._live: dict[tuple[int, int], _LiveTask] = {}
        self.stats = LabelerStats()
        self.events: list[RelabelEvent] = []

    def label_arrival(self, task: Task, now: float) -> TaskClass:
        """Label a task when it starts executing (initially assumed short)."""
        label = self.classifier.classify(task, observed_runtime=0.0)
        self._live[task.uid] = _LiveTask(task=task, start_time=now, label=label)
        self.stats.total_labeled += 1
        return label

    def current_label(self, task: Task) -> TaskClass:
        """The label this task currently carries."""
        live = self._live.get(task.uid)
        if live is None:
            raise KeyError(f"task {task.uid} is not being tracked")
        return live.label

    def advance(self, now: float) -> list[RelabelEvent]:
        """Re-examine every live task at time ``now``; relabel as needed."""
        new_events: list[RelabelEvent] = []
        for live in self._live.values():
            elapsed = now - live.start_time
            if elapsed <= 0:
                continue
            fresh = self.classifier.classify(live.task, observed_runtime=elapsed)
            if fresh.class_id != live.label.class_id:
                event = RelabelEvent(
                    task_uid=live.task.uid,
                    time=now,
                    old_class=live.label,
                    new_class=fresh,
                )
                new_events.append(event)
                live.label = fresh
                self.stats.relabeled += 1
        self.events.extend(new_events)
        return new_events

    def finish(self, task: Task, now: float) -> TaskClass:
        """Stop tracking a finished task; update accuracy statistics.

        Returns the final label the task carried.
        """
        live = self._live.pop(task.uid, None)
        if live is None:
            raise KeyError(f"task {task.uid} is not being tracked")
        truth = self.classifier.true_class(task)
        self.stats.finished += 1
        if live.label.class_id == truth.class_id:
            self.stats.finished_correct += 1
        if truth.duration_category is DurationCategory.LONG:
            # The task ran mislabeled from its start until the relabel point
            # (the split boundary) or its whole life if never relabeled.
            static = self.classifier.classify_static(task)
            boundary = min(static.split_seconds, task.duration)
            if live.label.duration_category is DurationCategory.LONG:
                self.stats.mislabel_seconds += boundary
            else:
                self.stats.mislabel_seconds += task.duration
        return live.label

    @property
    def num_live(self) -> int:
        return len(self._live)
