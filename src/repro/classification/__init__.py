"""Task characterization and run-time classification (Section V).

Two-step scheme:

1. per priority group, K-means on static features (log CPU, log memory
   request) yields *static classes*;
2. each static class is split into *short* and *long* sub-classes by a
   second K-means (k=2) on log duration.

At run time every arriving task is labeled with the nearest static centroid
and initially assumed *short*; the :class:`RuntimeLabeler` relabels it *long*
once its observed running time crosses the class's split boundary — the
paper's observation that "tasks are either short or long, and the majority
are short" keeps the transient labeling error small.
"""

from repro.classification.classifier import (
    DurationCategory,
    TaskClass,
    StaticClass,
    TaskClassifier,
    ClassifierConfig,
)
from repro.classification.labeler import RuntimeLabeler, RelabelEvent
from repro.classification.features import static_features, duration_features

__all__ = [
    "DurationCategory",
    "TaskClass",
    "StaticClass",
    "TaskClassifier",
    "ClassifierConfig",
    "RuntimeLabeler",
    "RelabelEvent",
    "static_features",
    "duration_features",
]
