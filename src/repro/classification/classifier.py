"""The two-step task classifier (Section V).

Step 1 clusters each priority group's tasks on static features with K-means
(k chosen per group by the elbow rule, as in Section IX-A).  Step 2 runs
K-means with k=2 on log duration inside every static class, producing a
*short* and a *long* sub-class separated by a boundary in seconds.

The resulting leaf :class:`TaskClass` objects carry exactly the statistics
the rest of HARMONY needs:

- per-resource Gaussian moments -> container sizing (Eq. 3);
- mean duration and squared coefficient of variation -> the M/G/N delay
  model (Eq. 1);
- membership counts -> reporting (Figs. 10-18).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.classification.features import static_features
from repro.clustering.kmeans import KMeans
from repro.clustering.selection import select_k_elbow
from repro.trace.schema import PriorityGroup, Task


class DurationCategory(enum.Enum):
    """Short/long sub-class label (step 2)."""

    SHORT = "short"
    LONG = "long"


@dataclass(frozen=True)
class StaticClass:
    """A step-1 cluster: tasks of one priority group with similar size.

    ``centroid_cpu``/``centroid_memory`` are in raw (normalized-machine)
    units; the K-means itself runs in log space.
    """

    group: PriorityGroup
    index: int
    centroid_cpu: float
    centroid_memory: float
    cpu_mean: float
    cpu_std: float
    memory_mean: float
    memory_std: float
    num_tasks: int
    #: Boundary (seconds) between the short and long sub-classes; tasks whose
    #: observed runtime exceeds it get relabeled long.  ``inf`` when the
    #: class has no long sub-class.
    split_seconds: float = float("inf")


@dataclass(frozen=True)
class TaskClass:
    """A leaf class: (priority group, static cluster, short|long).

    This is the unit of provisioning — one container type per leaf class.
    """

    class_id: int
    group: PriorityGroup
    static_index: int
    duration_category: DurationCategory
    cpu_mean: float
    cpu_std: float
    memory_mean: float
    memory_std: float
    duration_mean: float
    duration_std: float
    num_tasks: int

    def __post_init__(self) -> None:
        if self.duration_mean <= 0:
            raise ValueError(f"duration_mean must be positive, got {self.duration_mean}")

    @property
    def service_rate(self) -> float:
        """Task completions per second per container (mu in Eq. 1)."""
        return 1.0 / self.duration_mean

    @property
    def duration_scv(self) -> float:
        """Squared coefficient of variation of duration (CV^2 in Eq. 1)."""
        return (self.duration_std / self.duration_mean) ** 2

    @property
    def name(self) -> str:
        return (
            f"{self.group.name.lower()}-{self.static_index}"
            f"-{self.duration_category.value}"
        )


@dataclass(frozen=True)
class ClassifierConfig:
    """Knobs for :class:`TaskClassifier.fit`.

    ``k_per_group`` pins the step-1 k per priority group; unset groups use
    the elbow rule capped at ``k_max``.
    """

    k_per_group: dict[PriorityGroup, int] = field(default_factory=dict)
    k_max: int = 24
    elbow_threshold: float = 0.015
    seed: int = 0
    #: Minimum members for a sub-class to exist on its own; smaller ones are
    #: merged into their sibling.
    min_subclass_size: int = 5


class TaskClassifier:
    """Fits the two-step characterization and labels tasks at run time."""

    def __init__(self, config: ClassifierConfig | None = None) -> None:
        self.config = config or ClassifierConfig()
        self.static_classes: tuple[StaticClass, ...] = ()
        self.classes: tuple[TaskClass, ...] = ()
        self._group_models: dict[PriorityGroup, KMeans] = {}
        self._leaf_lookup: dict[tuple[PriorityGroup, int, DurationCategory], TaskClass] = {}
        self._fitted = False
        #: Degenerate-input events absorbed during the last fit: K-means
        #: empty-cluster reseeds, distinct-point collapses, and feature rows
        #: dropped for being non-finite.  Surfaced in the simulation
        #: summary's ``resilience.data_plane`` block.
        self.degenerate_events: dict[str, int] = {
            "kmeans_reseeds": 0,
            "collapsed_fits": 0,
            "nonfinite_features_dropped": 0,
        }

    # ------------------------------------------------------------------ fit

    def fit(self, tasks: list[Task]) -> "TaskClassifier":
        """Learn static classes and short/long sub-classes from a task sample."""
        if not tasks:
            raise ValueError("cannot fit a classifier on zero tasks")
        static_classes: list[StaticClass] = []
        leaves: list[TaskClass] = []
        class_id = 0
        self.degenerate_events = {
            "kmeans_reseeds": 0,
            "collapsed_fits": 0,
            "nonfinite_features_dropped": 0,
        }

        for group in PriorityGroup:
            group_tasks = [t for t in tasks if t.priority_group is group]
            if not group_tasks:
                continue
            features = static_features(group_tasks)
            finite_rows = np.isfinite(features).all(axis=1)
            if not finite_rows.all():
                # A poisoned task (dirty trace upstream of the sanitizer)
                # must not NaN every centroid in its group.
                self.degenerate_events["nonfinite_features_dropped"] += int(
                    (~finite_rows).sum()
                )
                group_tasks = [
                    t for t, ok in zip(group_tasks, finite_rows) if ok
                ]
                if not group_tasks:
                    continue
                features = features[finite_rows]
            k = self.config.k_per_group.get(group)
            if k is None:
                k, _ = select_k_elbow(
                    features,
                    k_max=self.config.k_max,
                    improvement_threshold=self.config.elbow_threshold,
                    seed=self.config.seed,
                )
            model = KMeans(k=k, n_init=3, seed=self.config.seed)
            result = model.fit(features)
            self._note_kmeans_result(result)
            self._group_models[group] = model

            for j in range(result.k):
                members = [
                    t for t, label in zip(group_tasks, result.labels) if label == j
                ]
                if not members:
                    continue
                cpu = np.array([t.cpu for t in members])
                mem = np.array([t.memory for t in members])
                durations = np.array([t.duration for t in members])
                split, subclasses = self._split_durations(durations)
                static = StaticClass(
                    group=group,
                    index=j,
                    centroid_cpu=float(10 ** result.centroids[j, 0]),
                    centroid_memory=float(10 ** result.centroids[j, 1]),
                    cpu_mean=float(cpu.mean()),
                    cpu_std=float(cpu.std()),
                    memory_mean=float(mem.mean()),
                    memory_std=float(mem.std()),
                    num_tasks=len(members),
                    split_seconds=split,
                )
                static_classes.append(static)
                for category, mask in subclasses.items():
                    sub_durations = durations[mask]
                    if sub_durations.size == 0:
                        continue
                    leaves.append(
                        TaskClass(
                            class_id=class_id,
                            group=group,
                            static_index=j,
                            duration_category=category,
                            cpu_mean=float(cpu[mask].mean()),
                            cpu_std=float(cpu[mask].std()),
                            memory_mean=float(mem[mask].mean()),
                            memory_std=float(mem[mask].std()),
                            duration_mean=float(sub_durations.mean()),
                            duration_std=float(sub_durations.std()),
                            num_tasks=int(mask.sum()),
                        )
                    )
                    class_id += 1

        self.static_classes = tuple(static_classes)
        self.classes = tuple(leaves)
        self._leaf_lookup = {
            (leaf.group, leaf.static_index, leaf.duration_category): leaf
            for leaf in leaves
        }
        self._fitted = True
        return self

    def _note_kmeans_result(self, result) -> None:
        self.degenerate_events["kmeans_reseeds"] += result.reseeds
        if result.collapsed:
            self.degenerate_events["collapsed_fits"] += 1

    def _split_durations(
        self, durations: np.ndarray
    ) -> tuple[float, dict[DurationCategory, np.ndarray]]:
        """Step 2: k=2 K-means on log duration -> (boundary_s, masks)."""
        n = durations.size
        log_d = np.log10(np.maximum(durations, 1.0))[:, None]
        if n < 2 * self.config.min_subclass_size or np.ptp(log_d) < 1e-9:
            # Too small or degenerate to split: everything is "short".
            return float("inf"), {DurationCategory.SHORT: np.ones(n, dtype=bool)}
        result = KMeans(k=2, n_init=3, seed=self.config.seed).fit(log_d)
        self._note_kmeans_result(result)
        centers = result.centroids.ravel()
        short_label = int(centers.argmin())
        short_mask = result.labels == short_label
        long_mask = ~short_mask
        if (
            short_mask.sum() < self.config.min_subclass_size
            or long_mask.sum() < self.config.min_subclass_size
        ):
            return float("inf"), {DurationCategory.SHORT: np.ones(n, dtype=bool)}
        boundary = 10 ** float(centers.mean())
        return boundary, {
            DurationCategory.SHORT: short_mask,
            DurationCategory.LONG: long_mask,
        }

    # ------------------------------------------------------------ labeling

    def classify_static(self, task: Task) -> StaticClass:
        """Nearest static class for a task (features known at submit time)."""
        self._require_fitted()
        model = self._group_models.get(task.priority_group)
        if model is None:
            raise KeyError(
                f"no static classes fitted for group {task.priority_group.name}"
            )
        label = int(model.predict(static_features([task]))[0])
        for static in self.static_classes:
            if static.group is task.priority_group and static.index == label:
                return static
        raise KeyError(
            f"static class ({task.priority_group.name}, {label}) has no members"
        )

    def classify(self, task: Task, observed_runtime: float = 0.0) -> TaskClass:
        """Leaf class for a task given its observed running time so far.

        With ``observed_runtime=0`` (a task that just arrived) this returns
        the *short* sub-class, implementing the paper's optimistic initial
        labeling; once the observed runtime crosses the class boundary the
        same call returns the *long* sub-class.
        """
        static = self.classify_static(task)
        category = (
            DurationCategory.LONG
            if observed_runtime > static.split_seconds
            else DurationCategory.SHORT
        )
        leaf = self._leaf_lookup.get((static.group, static.index, category))
        if leaf is None:
            # Class was not split (or a sub-class was merged): fall back to
            # whichever sub-class exists.
            fallback = (
                DurationCategory.SHORT
                if category is DurationCategory.LONG
                else DurationCategory.LONG
            )
            leaf = self._leaf_lookup.get((static.group, static.index, fallback))
        if leaf is None:
            raise KeyError(f"no leaf class for static class {static.group}/{static.index}")
        return leaf

    def classify_batch(self, tasks: list[Task], observed_runtime: float = 0.0
                       ) -> list[TaskClass]:
        """Vectorized :meth:`classify` over many tasks (one K-means predict
        per priority group instead of one per task)."""
        self._require_fitted()
        labels: list[TaskClass | None] = [None] * len(tasks)
        by_group: dict[PriorityGroup, list[int]] = {}
        for position, task in enumerate(tasks):
            by_group.setdefault(task.priority_group, []).append(position)
        for group, positions in by_group.items():
            model = self._group_models.get(group)
            if model is None:
                raise KeyError(f"no static classes fitted for group {group.name}")
            features = static_features([tasks[p] for p in positions])
            static_labels = model.predict(features)
            static_by_index = {
                s.index: s for s in self.static_classes if s.group is group
            }
            for position, static_label in zip(positions, static_labels):
                static = static_by_index[int(static_label)]
                category = (
                    DurationCategory.LONG
                    if observed_runtime > static.split_seconds
                    else DurationCategory.SHORT
                )
                leaf = self._leaf_lookup.get((group, static.index, category))
                if leaf is None:
                    fallback = (
                        DurationCategory.SHORT
                        if category is DurationCategory.LONG
                        else DurationCategory.LONG
                    )
                    leaf = self._leaf_lookup.get((group, static.index, fallback))
                if leaf is None:
                    raise KeyError(
                        f"no leaf class for static class {group}/{static.index}"
                    )
                labels[position] = leaf
        return [label for label in labels if label is not None]

    def true_class(self, task: Task) -> TaskClass:
        """The label a clairvoyant classifier would assign (duration known)."""
        return self.classify(task, observed_runtime=task.duration)

    def sibling(self, leaf: TaskClass) -> TaskClass | None:
        """The other duration sub-class of the same static class, if any."""
        other = (
            DurationCategory.LONG
            if leaf.duration_category is DurationCategory.SHORT
            else DurationCategory.SHORT
        )
        return self._leaf_lookup.get((leaf.group, leaf.static_index, other))

    def long_fraction(self, group: PriorityGroup, static_index: int) -> float:
        """Historical fraction of a static class's tasks that are long.

        Used to split observed arrival counts between the short and long
        sub-classes for forecasting: at arrival time every task is labeled
        short, but historically ``long_fraction`` of them turn out long.
        """
        short = self._leaf_lookup.get((group, static_index, DurationCategory.SHORT))
        long = self._leaf_lookup.get((group, static_index, DurationCategory.LONG))
        if long is None:
            return 0.0
        if short is None:
            return 1.0
        total = short.num_tasks + long.num_tasks
        return long.num_tasks / total if total else 0.0

    def split_boundary(self, group: PriorityGroup, static_index: int) -> float:
        """Short/long runtime boundary (seconds) for a static class."""
        for static in self.static_classes:
            if static.group is group and static.index == static_index:
                return static.split_seconds
        raise KeyError(f"no static class ({group.name}, {static_index})")

    def class_by_id(self, class_id: int) -> TaskClass:
        self._require_fitted()
        for leaf in self.classes:
            if leaf.class_id == class_id:
                return leaf
        raise KeyError(f"no task class with id {class_id}")

    def classes_in_group(self, group: PriorityGroup) -> tuple[TaskClass, ...]:
        self._require_fitted()
        return tuple(c for c in self.classes if c.group is group)

    @property
    def num_classes(self) -> int:
        return len(self.classes)

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("TaskClassifier used before fit()")

    # ------------------------------------------------------------ reporting

    def summary(self) -> list[dict]:
        """One row per leaf class (Figs. 10-18 data)."""
        self._require_fitted()
        return [
            {
                "class_id": leaf.class_id,
                "name": leaf.name,
                "group": leaf.group.name.lower(),
                "duration_category": leaf.duration_category.value,
                "num_tasks": leaf.num_tasks,
                "cpu_mean": leaf.cpu_mean,
                "cpu_std": leaf.cpu_std,
                "memory_mean": leaf.memory_mean,
                "memory_std": leaf.memory_std,
                "duration_mean_s": leaf.duration_mean,
                "duration_scv": leaf.duration_scv,
            }
            for leaf in self.classes
        ]
