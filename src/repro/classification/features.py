"""Feature extraction for task clustering.

Static features are the attributes known at submission time (CPU and memory
request); duration is only known once the task finishes, which is why the
classifier treats it in a separate second step (Section V).

Both feature sets are log-scaled: task sizes and durations span several
orders of magnitude (Section III-D), and clustering in raw units would
collapse everything but the few largest tasks into one class.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.clustering.scaling import LogScaler
from repro.trace.schema import Task

_SIZE_SCALER = LogScaler(floor=1e-6)
_DURATION_SCALER = LogScaler(floor=1.0)


def static_features(tasks: Sequence[Task]) -> np.ndarray:
    """``(n, 2)`` array of (log10 cpu, log10 memory) requests."""
    if not tasks:
        return np.empty((0, 2))
    raw = np.array([[t.cpu, t.memory] for t in tasks], dtype=float)
    return _SIZE_SCALER.transform(raw)


def duration_features(durations: Sequence[float] | np.ndarray) -> np.ndarray:
    """``(n, 1)`` array of log10 durations (floored at 1 second)."""
    raw = np.asarray(durations, dtype=float)
    return _DURATION_SCALER.transform(raw)[:, None] if raw.ndim == 1 else raw


def log_duration(duration: float) -> float:
    """log10 of a single duration, floored at 1 second."""
    return float(np.log10(max(duration, 1.0)))
