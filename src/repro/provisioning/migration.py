"""Container reassignment (migration) planning — Algorithm 1, line 10-11.

After CBS-RELAX decides how many machines of each type stay active, the
controller "computes a re-packing configuration for all selected active
machines" and migrates containers off the surplus ones so they can power
down.  The paper models the migration cost as part of the switching cost;
this module provides the planner that actually finds the moves:

1. rank active machines of each type by utilization (emptiest first);
2. try to relocate every container off the surplus machines onto the
   remaining ones (first-fit into the fullest receivers — tightest
   packing);
3. a machine is released only if *all* its containers found a new home;
   otherwise it stays active and its planned moves are discarded.

The planner works on the same :class:`MachineAssignment` representation the
rounder produces, so it composes with :class:`FirstFitRounder` and is also
usable standalone for consolidation studies (``bench_ablation_migration``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.provisioning.rounding import MachineAssignment


@dataclass(frozen=True)
class Move:
    """One planned container migration."""

    container_index: int
    count: int
    source: int
    destination: int


@dataclass
class MigrationPlan:
    """Outcome of a consolidation pass over one machine class."""

    moves: list[Move] = field(default_factory=list)
    released_machines: list[int] = field(default_factory=list)
    #: Machines that could not be emptied (stay active).
    retained_machines: list[int] = field(default_factory=list)

    @property
    def num_moves(self) -> int:
        return sum(move.count for move in self.moves)

    def cost(self, per_container_cost: float) -> float:
        """Total migration cost at a per-container price (part of C_sw)."""
        if per_container_cost < 0:
            raise ValueError(f"per_container_cost must be >= 0, got {per_container_cost}")
        return self.num_moves * per_container_cost


def _utilization(machine: MachineAssignment) -> float:
    capacity = np.asarray(machine.capacity, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = np.where(capacity > 0, machine.used / capacity, 0.0)
    return float(ratios.mean())


def plan_consolidation(
    machines: list[MachineAssignment],
    sizes: dict[int, tuple[float, ...]],
    target_active: int,
) -> MigrationPlan:
    """Empty surplus machines by migrating their containers.

    Parameters
    ----------
    machines:
        Active machines of one class with their current container loads.
    sizes:
        Container size per container index.
    target_active:
        Desired number of active machines after consolidation.

    Returns the plan; input machines are **not** mutated (the caller applies
    the moves when realizing the plan).
    """
    if target_active < 0:
        raise ValueError(f"target_active must be >= 0, got {target_active}")
    if target_active >= len(machines):
        return MigrationPlan(retained_machines=[m.machine_id for m in machines])

    # Emptiest machines are the eviction candidates; fullest stay.
    ordered = sorted(machines, key=_utilization, reverse=True)
    keepers = ordered[:target_active]
    candidates = ordered[target_active:]

    # Work on residual copies of the keepers' free capacity.
    residuals = {
        keeper.machine_id: np.asarray(keeper.capacity, dtype=float) - keeper.used
        for keeper in keepers
    }
    plan = MigrationPlan()

    for machine in sorted(candidates, key=_utilization):
        moves: list[Move] = []
        feasible = True
        # Tentative residuals so a failed machine leaves no side effects.
        tentative = {k: v.copy() for k, v in residuals.items()}
        for container_index, count in machine.containers.items():
            size = np.asarray(sizes[container_index], dtype=float)
            remaining = count
            # Fill tightest receivers first to preserve big holes.
            for keeper in sorted(keepers, key=lambda k: tentative[k.machine_id].min()):
                if remaining == 0:
                    break
                room = tentative[keeper.machine_id]
                fit = int(min(np.floor((room + 1e-9) / size).min(), remaining))
                if fit > 0:
                    tentative[keeper.machine_id] = room - size * fit
                    moves.append(
                        Move(
                            container_index=container_index,
                            count=fit,
                            source=machine.machine_id,
                            destination=keeper.machine_id,
                        )
                    )
                    remaining -= fit
            if remaining > 0:
                feasible = False
                break
        if feasible:
            residuals = tentative
            plan.moves.extend(moves)
            plan.released_machines.append(machine.machine_id)
        else:
            plan.retained_machines.append(machine.machine_id)

    plan.retained_machines.extend(k.machine_id for k in keepers)
    return plan


def consolidation_savings(
    machines: list[MachineAssignment],
    sizes: dict[int, tuple[float, ...]],
    target_active: int,
    idle_watts: float,
    horizon_seconds: float,
    price_per_kwh: float,
    migration_cost: float,
) -> tuple[MigrationPlan, float]:
    """Plan a consolidation and compute its net monetary benefit.

    Net = energy saved by released machines over ``horizon_seconds`` minus
    the migration cost of the moves.  A negative net means the controller
    should skip the consolidation (the paper folds this trade-off into the
    switching cost term of Eq. 14).
    """
    plan = plan_consolidation(machines, sizes, target_active)
    saved_kwh = (
        len(plan.released_machines) * idle_watts / 1000.0 * horizon_seconds / 3600.0
    )
    net = saved_kwh * price_per_kwh - plan.cost(migration_cost)
    return plan, net
