"""A reactive threshold autoscaler — the classic rule-based comparison.

Beyond the paper's heterogeneity-oblivious 80%-utilization baseline, most
production clusters of the era ran simple hysteresis autoscalers: scale up
when utilization exceeds a high-water mark, down below a low-water mark,
by a fixed step.  Including it alongside the paper's baseline shows where
*reactivity without a model* lands between the static cluster and HARMONY.

Like the paper's baseline it is heterogeneity-oblivious (one aggregate
utilization signal, machines chosen in energy-efficiency order) and keeps
the scheduler unrestricted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.energy.models import MachineModel
from repro.provisioning.controller import ProvisioningDecision


@dataclass(frozen=True)
class ThresholdConfig:
    """Hysteresis band for target-tracking scaling.

    Outside the (low, high) utilization band the target machine count is
    rescaled proportionally (``target * utilization / watermark``), the
    standard target-tracking rule — one overloaded period roughly corrects
    the deficit instead of creeping by fixed steps.
    """

    high_watermark: float = 0.75
    low_watermark: float = 0.40

    def __post_init__(self) -> None:
        if not 0 < self.low_watermark < self.high_watermark <= 1:
            raise ValueError(
                "need 0 < low_watermark < high_watermark <= 1, got "
                f"{self.low_watermark}, {self.high_watermark}"
            )


class ThresholdAutoscaler:
    """Rule-based scale-up/scale-down over an efficiency-ordered fleet."""

    def __init__(
        self,
        machine_models: tuple[MachineModel, ...],
        config: ThresholdConfig | None = None,
    ) -> None:
        if not machine_models:
            raise ValueError("need at least one machine model")
        self.machine_models = machine_models
        self.config = config or ThresholdConfig()
        self.efficiency_order = tuple(sorted(machine_models, key=lambda m: -m.efficiency))
        self._target_total = 0
        self.decisions: list[ProvisioningDecision] = []

    def observe(self, arrival_counts: dict[int, float]) -> None:
        """Rule-based: ignores per-class arrivals."""

    def decide(
        self,
        now: float,
        demand_cpu: float,
        demand_memory: float,
        powered: dict[int, int] | None = None,
        available: dict[int, int] | None = None,
    ) -> ProvisioningDecision:
        """One hysteresis step.

        Utilization is measured as bottleneck demand over the capacity of
        the *currently targeted* machines; the target count moves by
        ``step_fraction`` when outside the band.
        """
        if demand_cpu < 0 or demand_memory < 0:
            raise ValueError("demand must be non-negative")
        capacity_cpu, capacity_memory = self._capacity_of(self._target_total, available)
        utilization = 0.0
        if capacity_cpu > 0:
            utilization = max(
                demand_cpu / capacity_cpu, demand_memory / max(capacity_memory, 1e-9)
            )

        total_available = sum(
            (available or {}).get(m.platform_id, m.count) for m in self.machine_models
        )
        if self._target_total == 0 and (demand_cpu > 0 or demand_memory > 0):
            self._target_total = 1
        elif utilization > self.config.high_watermark:
            # Target tracking: rescale so utilization lands at the high mark.
            grown = math.ceil(
                self._target_total * utilization / self.config.high_watermark
            )
            self._target_total = min(max(grown, self._target_total + 1), total_available)
        elif utilization < self.config.low_watermark and self._target_total > 0:
            midpoint = (self.config.low_watermark + self.config.high_watermark) / 2
            shrunk = math.floor(self._target_total * utilization / midpoint)
            self._target_total = max(min(shrunk, self._target_total - 1), 0)

        active = self._allocate(self._target_total, available)
        decision = ProvisioningDecision(time=now, active=active, quotas=None)
        self.decisions.append(decision)
        return decision

    def to_state(self) -> dict:
        """Behavior-relevant state for serve checkpoints.

        Only the hysteresis target is behavioral; the ``decisions`` report
        log is deliberately excluded (restored runs start it empty).
        """
        return {"target_total": self._target_total}

    def restore_state(self, state: dict) -> None:
        self._target_total = int(state["target_total"])

    def _allocate(
        self, total: int, available: dict[int, int] | None
    ) -> dict[int, int]:
        """Fill the target count in energy-efficiency order."""
        active = {m.platform_id: 0 for m in self.machine_models}
        remaining = total
        for model in self.efficiency_order:
            cap = (available or {}).get(model.platform_id, model.count)
            take = min(remaining, cap)
            active[model.platform_id] = take
            remaining -= take
            if remaining == 0:
                break
        return active

    def _capacity_of(
        self, total: int, available: dict[int, int] | None
    ) -> tuple[float, float]:
        allocation = self._allocate(total, available)
        cpu = sum(
            next(m for m in self.machine_models if m.platform_id == pid).cpu_capacity * n
            for pid, n in allocation.items()
        )
        memory = sum(
            next(m for m in self.machine_models if m.platform_id == pid).memory_capacity * n
            for pid, n in allocation.items()
        )
        return cpu, memory
