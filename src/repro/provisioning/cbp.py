"""CBP: container-based provisioning (Section VIII-B).

The deployable variant of CBS: CBS-RELAX still decides *how many machines of
each type* to provision, but the fractional machine counts and per-type
container assignments are simply rounded to the nearest integer — no
coordinated bin-packing — and the cluster's *existing* scheduler keeps its
own algorithm (e.g. first-fit), constrained only to keep the number of type-n
tasks on type-m machines below ``x^{mn}_t``.

CBP therefore trades CBS's delay guarantee for deployment simplicity, which
is exactly the gap Figs. 21-26 measure.
"""

from __future__ import annotations

import numpy as np

from repro.provisioning.controller import HarmonyController, ProvisioningDecision
from repro.provisioning.rounding import _largest_remainder_targets


class CbpController(HarmonyController):
    """CBS-RELAX provisioning with nearest-integer rounding (no packing).

    Shares the predictor/queueing/LP machinery with
    :class:`HarmonyController`; only the realization step differs.
    """

    def decide(
        self,
        now: float,
        backlog: dict[int, int] | None = None,
        available: dict[int, int] | None = None,
        running: dict[int, int] | None = None,
        running_by_platform: dict[int, dict[int, int]] | None = None,
        powered: dict[int, int] | None = None,
    ) -> ProvisioningDecision:
        rates = self.forecast_rates()
        demand = self.container_demand(rates, backlog, running)
        problem = self.build_problem(now, demand, available)
        if powered is not None:
            initial_active = np.array(
                [float(powered.get(m.platform_id, 0)) for m in self.machine_models]
            )
        else:
            initial_active = self._previous_active
        solution = self._solver.solve(
            problem,
            initial_active=initial_active,
            committed=self.committed_matrix(running_by_platform),
        )
        self.last_solution = solution
        self.last_plan = None  # CBP performs no packing

        # Round delta/sigma to integer values (Section VIII-B): machines per
        # type (nearest int, rounded up so fractional provisioning is not
        # silently lost) and container quotas per (type, class) via
        # largest-remainder so thin classes keep their column totals.
        z = np.ceil(solution.z[0] - 0.5 + 1e-9).astype(int)
        x = _largest_remainder_targets(solution.x[0])
        active: dict[int, int] = {}
        quotas: dict[int, dict[int, int]] = {}
        for m, model in enumerate(self.machine_models):
            cap = model.count if available is None else available.get(model.platform_id, model.count)
            active[model.platform_id] = int(min(max(z[m], 0), cap))
            quotas[model.platform_id] = {
                self.class_ids[n]: int(x[m, n])
                for n in range(len(self.class_ids))
                if x[m, n] > 0
            }

        decision = ProvisioningDecision(
            time=now,
            active=active,
            quotas=quotas,
            demand={
                self.class_ids[n]: float(demand[0, n]) for n in range(len(self.class_ids))
            },
            dropped={},
            objective=solution.objective,
        )
        self._previous_active = np.array(
            [active[model.platform_id] for model in self.machine_models], dtype=float
        )
        self.decisions.append(decision)
        return decision
