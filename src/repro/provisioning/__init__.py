"""CBS: container-based scheduling for dynamic capacity provisioning.

The paper's primary contribution (Sections VII-VIII):

- :mod:`repro.provisioning.model` -- the CBS problem data (machine types,
  container types, utility, prices, compatibility);
- :mod:`repro.provisioning.relax` -- the convex relaxation CBS-RELAX
  (Eq. 14-16) solved as a linear program;
- :mod:`repro.provisioning.rounding` -- Lemma 1's first-fit rounding of the
  fractional solution to an integer machine/container assignment;
- :mod:`repro.provisioning.controller` -- Algorithm 1, the MPC loop;
- :mod:`repro.provisioning.cbp` -- the deployable CBP variant
  (Section VIII-B) that only provisions machines and caps the native
  scheduler;
- :mod:`repro.provisioning.baseline` -- the heterogeneity-oblivious
  80%-bottleneck-utilization baseline of Section IX-B.
"""

from repro.provisioning.model import (
    ContainerType,
    MachineClass,
    ProvisioningProblem,
    UtilityFunction,
    build_problem,
)
from repro.provisioning.relax import CbsRelaxSolver, RelaxSolution
from repro.provisioning.rounding import (
    FirstFitRounder,
    MachineAssignment,
    RoundedPlan,
    first_fit_pack,
)
from repro.provisioning.controller import (
    HarmonyController,
    ControllerConfig,
    ProvisioningDecision,
)
from repro.provisioning.cbp import CbpController
from repro.provisioning.baseline import BaselineProvisioner, BaselineConfig
from repro.provisioning.migration import (
    Move,
    MigrationPlan,
    plan_consolidation,
    consolidation_savings,
)
from repro.provisioning.autoscaler import ThresholdAutoscaler, ThresholdConfig
from repro.provisioning.geo import (
    DataCenter,
    auto_offsets,
    build_geo_problem,
    machines_by_dc,
)

__all__ = [
    "ContainerType",
    "MachineClass",
    "ProvisioningProblem",
    "UtilityFunction",
    "build_problem",
    "CbsRelaxSolver",
    "RelaxSolution",
    "FirstFitRounder",
    "MachineAssignment",
    "RoundedPlan",
    "first_fit_pack",
    "HarmonyController",
    "ControllerConfig",
    "ProvisioningDecision",
    "CbpController",
    "BaselineProvisioner",
    "BaselineConfig",
    "Move",
    "MigrationPlan",
    "plan_consolidation",
    "consolidation_savings",
    "ThresholdAutoscaler",
    "ThresholdConfig",
    "DataCenter",
    "auto_offsets",
    "build_geo_problem",
    "machines_by_dc",
]
