"""CBS-RELAX (Eq. 14-16) as a linear program.

The relaxation keeps container counts at the (machine type x container type)
aggregate level — ``x^{mn}_t`` containers of type n on type-m machines and
``z^m_t`` active type-m machines — which collapses the per-machine integer
program into a small LP:

    max  sum_t [ sum_n f_n(sum_m x^{mn}_t)
                 - p_t sum_m ( z^m_t E_idle,m
                               + sum_r sum_n alpha_mr c_nr / C_mr x^{mn}_t ) ]
         - sum_t sum_m q_m |delta^m_t|

    s.t. z^m_t <= N^m_t                                   (15)
         sum_n omega_n c_nr x^{mn}_t <= z^m_t C_mr        (16)/(17)
         x, z >= 0

Piecewise-linear concave ``f_n`` enters through per-segment auxiliary
variables; ``|delta|`` through a positive/negative split.  scipy's HiGHS
solves instances of this size (W<=8, M~4-10, N~10-40) in milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize, sparse

from repro.errors import SolverInfeasible
from repro.provisioning.model import ProvisioningProblem


@dataclass(frozen=True)
class RelaxSolution:
    """Fractional CBS-RELAX optimum.

    All arrays span the full MPC horizon; Algorithm 1 only *realizes* step 0
    and re-solves next period (receding horizon).
    """

    #: (W, M) fractional active machines per class.
    z: np.ndarray
    #: (W, M, N) fractional container assignment.
    x: np.ndarray
    #: (W, M) machines switched on / off relative to the previous step.
    switch_up: np.ndarray
    switch_down: np.ndarray
    objective: float
    utility: float
    energy_cost: float
    switching_cost: float
    status: str

    @property
    def horizon(self) -> int:
        return self.z.shape[0]

    def scheduled(self, t: int = 0) -> np.ndarray:
        """(N,) total containers of each type scheduled at horizon step t."""
        return self.x[t].sum(axis=0)

    def active_machines(self, t: int = 0) -> np.ndarray:
        """(M,) fractional active machines at horizon step t."""
        return self.z[t]


class CbsRelaxSolver:
    """Builds and solves the CBS-RELAX LP for a problem instance."""

    def __init__(self, solver_method: str = "highs") -> None:
        self.solver_method = solver_method

    @staticmethod
    def _feasible_committed(
        problem: ProvisioningProblem,
        committed: np.ndarray | None,
        compatible: np.ndarray,
    ) -> np.ndarray | None:
        """Clip committed stocks so the forced lower bounds stay feasible.

        Stocks are physically placed, but they were placed at *task* sizes
        while the LP reasons in *container* sizes; a pathological mix could
        demand more capacity than ``available``.  Scale each machine type's
        stock down uniformly if its container-size footprint exceeds the
        type's total capacity.
        """
        if committed is None:
            return None
        committed = np.maximum(np.asarray(committed, dtype=float), 0.0)
        M, N = len(problem.machines), len(problem.containers)
        if committed.shape != (M, N):
            raise ValueError(f"committed must be (M={M}, N={N}), got {committed.shape}")
        omega = problem.omega()
        floor = committed.copy()
        floor[~compatible] = 0.0
        for m, machine in enumerate(problem.machines):
            for r in range(problem.num_resources):
                footprint = sum(
                    omega[n] * problem.containers[n].size[r] * floor[m, n]
                    for n in range(N)
                )
                budget = machine.available * machine.capacity[r]
                if footprint > budget and footprint > 0:
                    floor[m] *= budget / footprint
        return floor

    def solve(
        self,
        problem: ProvisioningProblem,
        initial_active: np.ndarray | None = None,
        committed: np.ndarray | None = None,
    ) -> RelaxSolution:
        """Solve one instance.

        Parameters
        ----------
        initial_active:
            ``(M,)`` machines active *before* the first horizon step (the
            ``z^m_{t-1}`` against which switching cost at t=0 accrues).
            Defaults to zeros (cold start).
        committed:
            ``(M, N)`` containers already occupied by *running* tasks on each
            machine type.  Running tasks cannot migrate, so ``x`` at step 0
            is lower-bounded by these stocks — otherwise the optimizer would
            "move" sunk capacity between machine types and the resulting
            quotas would block new placements where tasks actually run
            (the paper handles the same issue via container reassignment;
            we pin stocks instead of migrating).  Bounds are scaled down
            per machine type if they would exceed available capacity.
        """
        W = problem.horizon
        M = len(problem.machines)
        N = len(problem.containers)
        demand = np.asarray(problem.demand, dtype=float)
        prices = np.asarray(problem.prices, dtype=float)
        omega = problem.omega()
        compatible = problem.compatibility()
        if initial_active is None:
            initial_active = np.zeros(M)
        initial_active = np.asarray(initial_active, dtype=float)
        if initial_active.shape != (M,):
            raise ValueError(f"initial_active must be (M={M},), got {initial_active.shape}")

        # --- variable layout -------------------------------------------------
        # z[t,m], x[t,m,n], sp[t,m], sm[t,m], u[t,n,s] flattened in that order.
        num_z = W * M
        num_x = W * M * N
        num_s = W * M  # each for sp and sm
        segment_counts = [len(c.utility.segments) for c in problem.containers]
        seg_offsets = np.concatenate([[0], np.cumsum(segment_counts)])
        num_u_per_t = int(seg_offsets[-1])
        num_u = W * num_u_per_t
        total = num_z + num_x + 2 * num_s + num_u

        def z_index(t: int, m: int) -> int:
            return t * M + m

        def x_index(t: int, m: int, n: int) -> int:
            return num_z + (t * M + m) * N + n

        def sp_index(t: int, m: int) -> int:
            return num_z + num_x + t * M + m

        def sm_index(t: int, m: int) -> int:
            return num_z + num_x + num_s + t * M + m

        def u_index(t: int, n: int, s: int) -> int:
            return num_z + num_x + 2 * num_s + t * num_u_per_t + int(seg_offsets[n]) + s

        # --- objective (linprog minimizes; negate gains) ---------------------
        cost = np.zeros(total)
        for t in range(W):
            idle_cost = problem.idle_cost_per_interval(float(prices[t]))
            run_cost = problem.container_energy_cost(float(prices[t]))
            for m in range(M):
                cost[z_index(t, m)] = idle_cost[m]
                cost[sp_index(t, m)] = problem.machines[m].switch_cost
                cost[sm_index(t, m)] = problem.machines[m].switch_cost
                for n in range(N):
                    cost[x_index(t, m, n)] = run_cost[m, n]
            for n, container in enumerate(problem.containers):
                for s, (_, slope) in enumerate(container.utility.segments):
                    cost[u_index(t, n, s)] = -slope

        # --- bounds -----------------------------------------------------------
        lower = np.zeros(total)
        upper = np.full(total, np.inf)
        committed_floor = self._feasible_committed(problem, committed, compatible)
        for t in range(W):
            for m, machine in enumerate(problem.machines):
                upper[z_index(t, m)] = machine.available
                for n in range(N):
                    if not compatible[m, n]:
                        upper[x_index(t, m, n)] = 0.0
                    elif t == 0 and committed_floor is not None:
                        lower[x_index(t, m, n)] = committed_floor[m, n]
            for n, container in enumerate(problem.containers):
                for s, (width, _) in enumerate(container.utility.segments):
                    # Utility saturates at forecast demand for this step.
                    upper[u_index(t, n, s)] = min(width, float(demand[t, n]))

        # --- inequality constraints -------------------------------------------
        rows: list[int] = []
        cols: list[int] = []
        vals: list[float] = []
        b_ub: list[float] = []
        row = 0

        # (16)/(17): sum_n omega_n c_nr x <= C_mr z
        R = problem.num_resources
        for t in range(W):
            for m, machine in enumerate(problem.machines):
                for r in range(R):
                    for n, container in enumerate(problem.containers):
                        if not compatible[m, n]:
                            continue
                        rows.append(row)
                        cols.append(x_index(t, m, n))
                        vals.append(omega[n] * container.size[r])
                    rows.append(row)
                    cols.append(z_index(t, m))
                    vals.append(-machine.capacity[r])
                    b_ub.append(0.0)
                    row += 1

        # utility linking: sum_s u[t,n,s] <= sum_m x[t,m,n]
        for t in range(W):
            for n in range(N):
                for s in range(segment_counts[n]):
                    rows.append(row)
                    cols.append(u_index(t, n, s))
                    vals.append(1.0)
                for m in range(M):
                    if compatible[m, n]:
                        rows.append(row)
                        cols.append(x_index(t, m, n))
                        vals.append(-1.0)
                b_ub.append(0.0)
                row += 1

        A_ub = sparse.coo_matrix((vals, (rows, cols)), shape=(row, total)).tocsr()
        b_ub_arr = np.asarray(b_ub)

        # --- switching equalities: z[t] - z[t-1] - sp[t] + sm[t] = 0 ----------
        eq_rows: list[int] = []
        eq_cols: list[int] = []
        eq_vals: list[float] = []
        b_eq: list[float] = []
        eq_row = 0
        for t in range(W):
            for m in range(M):
                eq_rows.append(eq_row)
                eq_cols.append(z_index(t, m))
                eq_vals.append(1.0)
                if t > 0:
                    eq_rows.append(eq_row)
                    eq_cols.append(z_index(t - 1, m))
                    eq_vals.append(-1.0)
                    b_eq.append(0.0)
                else:
                    b_eq.append(float(initial_active[m]))
                eq_rows.append(eq_row)
                eq_cols.append(sp_index(t, m))
                eq_vals.append(-1.0)
                eq_rows.append(eq_row)
                eq_cols.append(sm_index(t, m))
                eq_vals.append(1.0)
                eq_row += 1
        A_eq = sparse.coo_matrix((eq_vals, (eq_rows, eq_cols)), shape=(eq_row, total)).tocsr()
        b_eq_arr = np.asarray(b_eq)

        result = optimize.linprog(
            cost,
            A_ub=A_ub,
            b_ub=b_ub_arr,
            A_eq=A_eq,
            b_eq=b_eq_arr,
            bounds=np.column_stack([lower, upper]),
            method=self.solver_method,
        )
        if not result.success:
            raise SolverInfeasible(
                f"CBS-RELAX LP failed: {result.message}",
                status=int(result.status),
                horizon=W,
                machines=M,
                containers=N,
            )

        v = result.x
        z = np.array([[v[z_index(t, m)] for m in range(M)] for t in range(W)])
        x = np.array(
            [[[v[x_index(t, m, n)] for n in range(N)] for m in range(M)] for t in range(W)]
        )
        sp = np.array([[v[sp_index(t, m)] for m in range(M)] for t in range(W)])
        sm = np.array([[v[sm_index(t, m)] for m in range(M)] for t in range(W)])

        utility = 0.0
        energy = 0.0
        switching = 0.0
        for t in range(W):
            for n, container in enumerate(problem.containers):
                for s, (_, slope) in enumerate(container.utility.segments):
                    utility += slope * v[u_index(t, n, s)]
            idle_cost = problem.idle_cost_per_interval(float(prices[t]))
            run_cost = problem.container_energy_cost(float(prices[t]))
            energy += float(idle_cost @ z[t]) + float((run_cost * x[t]).sum())
            switching += sum(
                problem.machines[m].switch_cost * (sp[t, m] + sm[t, m]) for m in range(M)
            )

        return RelaxSolution(
            z=z,
            x=x,
            switch_up=sp,
            switch_down=sm,
            objective=-float(result.fun),
            utility=utility,
            energy_cost=energy,
            switching_cost=switching,
            status="optimal",
        )
