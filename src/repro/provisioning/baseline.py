"""The heterogeneity-oblivious baseline provisioner (Section IX-B).

"A baseline algorithm that finds the best trade-off between energy savings
and scheduling delay by maintaining an 80% utilization of the bottleneck
resource.  It provisions machines in a 'greedy' fashion by turning them on
in decreasing order of energy efficiency."

The baseline sees only *aggregate* demand — no task classes, no per-class
queueing model, no compatibility reasoning — which is precisely what makes
it turn on the wrong machines for large or constrained tasks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.energy.models import MachineModel
from repro.provisioning.controller import ProvisioningDecision


@dataclass(frozen=True)
class BaselineConfig:
    """Baseline knobs.

    ``target_utilization`` is the bottleneck-resource utilization the
    provisioner maintains (the paper's 80%).
    """

    target_utilization: float = 0.8

    def __post_init__(self) -> None:
        if not 0 < self.target_utilization <= 1:
            raise ValueError(
                f"target_utilization must be in (0, 1], got {self.target_utilization}"
            )


class BaselineProvisioner:
    """Greedy energy-efficiency-ordered, heterogeneity-oblivious provisioning."""

    def __init__(
        self,
        machine_models: tuple[MachineModel, ...],
        config: BaselineConfig | None = None,
    ) -> None:
        if not machine_models:
            raise ValueError("need at least one machine model")
        self.machine_models = machine_models
        self.config = config or BaselineConfig()
        #: Models in decreasing energy-efficiency (capacity per peak watt).
        self.efficiency_order = tuple(
            sorted(machine_models, key=lambda m: -m.efficiency)
        )
        self.decisions: list[ProvisioningDecision] = []

    def observe(self, arrival_counts: dict[int, float]) -> None:
        """The baseline ignores per-class arrivals (heterogeneity-oblivious)."""

    def decide(
        self,
        now: float,
        demand_cpu: float,
        demand_memory: float,
        available: dict[int, int] | None = None,
    ) -> ProvisioningDecision:
        """Provision for aggregate demand at the target utilization.

        Parameters
        ----------
        demand_cpu / demand_memory:
            Total requested resources of tasks currently in the system
            (pending + running), in normalized machine units.
        """
        if demand_cpu < 0 or demand_memory < 0:
            raise ValueError("demand must be non-negative")
        required_cpu = demand_cpu / self.config.target_utilization
        required_memory = demand_memory / self.config.target_utilization

        active: dict[int, int] = {m.platform_id: 0 for m in self.machine_models}
        got_cpu = 0.0
        got_memory = 0.0
        for model in self.efficiency_order:
            cap = model.count if available is None else available.get(model.platform_id, model.count)
            for _ in range(cap):
                if got_cpu >= required_cpu and got_memory >= required_memory:
                    break
                active[model.platform_id] += 1
                got_cpu += model.cpu_capacity
                got_memory += model.memory_capacity
            if got_cpu >= required_cpu and got_memory >= required_memory:
                break

        decision = ProvisioningDecision(
            time=now,
            active=active,
            quotas=None,  # the baseline scheduler is unrestricted
            demand={},
        )
        self.decisions.append(decision)
        return decision
