"""CBS problem data (Section VII-B, Table I).

The optimization sees the world as ``M`` machine classes and ``N`` container
types over ``D`` resource dimensions:

- a :class:`MachineClass` carries capacity ``C_mr``, availability ``N_m``,
  the energy parameters ``E_idle,m`` / ``alpha_mr`` and switching cost
  ``q_m``;
- a :class:`ContainerType` carries size ``c_nr`` and the concave utility
  ``f_n`` earned by scheduling its containers;
- a :class:`ProvisioningProblem` bundles both with the electricity price and
  the container->machine compatibility mask.

Utilities are piecewise-linear concave (:class:`UtilityFunction`), which is
exactly what an SLO-derived "monetary gain for scheduling containers" looks
like and keeps CBS-RELAX a linear program.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.containers.sizing import ContainerSpec
from repro.energy.models import MachineModel


@dataclass(frozen=True)
class UtilityFunction:
    """Concave piecewise-linear utility ``f_n`` (Eq. 8).

    The function is ``sum_s slope_s * min(max(x - start_s, 0), width_s)``
    over segments with strictly decreasing slopes.  The common case is a
    single segment: ``weight`` per container up to ``demand`` containers,
    flat afterwards.
    """

    #: (width, slope) per segment; widths are container counts.
    segments: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("utility needs at least one segment")
        slopes = [slope for _, slope in self.segments]
        for width, slope in self.segments:
            if width <= 0:
                raise ValueError(f"segment widths must be positive, got {width}")
            if slope < 0:
                raise ValueError(f"segment slopes must be >= 0, got {slope}")
        if any(s2 > s1 + 1e-12 for s1, s2 in zip(slopes, slopes[1:])):
            raise ValueError("segment slopes must be non-increasing for concavity")

    @staticmethod
    def capped_linear(weight: float, demand: float) -> "UtilityFunction":
        """``weight`` per container up to ``demand``; flat afterwards."""
        if demand <= 0:
            raise ValueError(f"demand must be positive, got {demand}")
        return UtilityFunction(segments=((demand, weight),))

    def __call__(self, x: float) -> float:
        if x < 0:
            raise ValueError(f"utility argument must be >= 0, got {x}")
        value = 0.0
        remaining = x
        for width, slope in self.segments:
            used = min(remaining, width)
            value += slope * used
            remaining -= used
            if remaining <= 0:
                break
        return value

    @property
    def saturation(self) -> float:
        """Container count beyond which marginal utility is zero."""
        return sum(width for width, _ in self.segments)


@dataclass(frozen=True)
class MachineClass:
    """One machine type from the optimizer's point of view.

    ``price_multiplier`` scales the electricity price this class pays
    relative to the problem's ``p_t`` — the hook for geo-distributed
    provisioning where machine classes live in data centers with different
    tariffs (see :mod:`repro.provisioning.geo`).
    """

    platform_id: int
    name: str
    capacity: tuple[float, ...]
    available: int
    idle_watts: float
    alpha_watts: tuple[float, ...]
    switch_cost: float
    price_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.price_multiplier <= 0:
            raise ValueError(
                f"price_multiplier must be positive, got {self.price_multiplier}"
            )
        if len(self.capacity) != len(self.alpha_watts):
            raise ValueError("capacity and alpha_watts must share dimensions")
        if any(c <= 0 for c in self.capacity):
            raise ValueError(f"capacities must be positive, got {self.capacity}")
        if self.available < 0:
            raise ValueError(f"available must be >= 0, got {self.available}")
        if self.idle_watts < 0 or any(a < 0 for a in self.alpha_watts):
            raise ValueError("energy parameters must be >= 0")
        if self.switch_cost < 0:
            raise ValueError(f"switch_cost must be >= 0, got {self.switch_cost}")

    @staticmethod
    def from_machine_model(model: MachineModel, available: int | None = None) -> "MachineClass":
        return MachineClass(
            platform_id=model.platform_id,
            name=model.name,
            capacity=(model.cpu_capacity, model.memory_capacity),
            available=model.count if available is None else available,
            idle_watts=model.power_model.idle_watts,
            alpha_watts=model.power_model.alpha_watts,
            switch_cost=model.switch_cost,
        )


@dataclass(frozen=True)
class ContainerType:
    """One container type (= one task class) for the optimizer."""

    class_id: int
    name: str
    size: tuple[float, ...]
    utility: UtilityFunction
    #: Platform ids this container may be placed on; ``None`` = any machine
    #: with sufficient capacity.
    allowed_platforms: frozenset[int] | None = None

    def __post_init__(self) -> None:
        if any(s <= 0 for s in self.size):
            raise ValueError(f"container sizes must be positive, got {self.size}")

    @staticmethod
    def from_spec(
        spec: ContainerSpec,
        weight: float,
        demand: float,
        allowed_platforms: frozenset[int] | None = None,
    ) -> "ContainerType":
        return ContainerType(
            class_id=spec.class_id,
            name=spec.task_class.name,
            size=(spec.cpu, spec.memory),
            utility=UtilityFunction.capped_linear(weight, max(demand, 1e-9)),
            allowed_platforms=allowed_platforms,
        )

    def fits(self, machine: MachineClass) -> bool:
        """Whether one container ever fits one machine of this class."""
        if (
            self.allowed_platforms is not None
            and machine.platform_id not in self.allowed_platforms
        ):
            return False
        return all(s <= c + 1e-12 for s, c in zip(self.size, machine.capacity))


@dataclass(frozen=True)
class ProvisioningProblem:
    """Full CBS instance for one control round.

    Attributes
    ----------
    machines / containers:
        The M machine classes and N container types.
    demand:
        ``(W, N)`` predicted container demand per horizon step (the
        ``N^n_{t+i|t}`` of Algorithm 1); ``W`` is the MPC horizon.
    prices:
        ``(W,)`` electricity price ($/kWh) per horizon step.
    interval_seconds:
        Length of one control interval (energy integrates over it).
    overprovision:
        The omega_n factors of Eq. 17 (per container type), defaulting to 1.
    """

    machines: tuple[MachineClass, ...]
    containers: tuple[ContainerType, ...]
    demand: np.ndarray
    prices: np.ndarray
    interval_seconds: float
    overprovision: np.ndarray | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.machines:
            raise ValueError("problem needs at least one machine class")
        if not self.containers:
            raise ValueError("problem needs at least one container type")
        demand = np.asarray(self.demand, dtype=float)
        if demand.ndim != 2 or demand.shape[1] != len(self.containers):
            raise ValueError(
                f"demand must be (W, N={len(self.containers)}), got {demand.shape}"
            )
        if (demand < 0).any():
            raise ValueError("demand must be non-negative")
        prices = np.asarray(self.prices, dtype=float)
        if prices.shape != (demand.shape[0],):
            raise ValueError(
                f"prices must be (W={demand.shape[0]},), got {prices.shape}"
            )
        if (prices < 0).any():
            raise ValueError("prices must be non-negative")
        if self.interval_seconds <= 0:
            raise ValueError(f"interval_seconds must be positive, got {self.interval_seconds}")
        if self.overprovision is not None:
            omega = np.asarray(self.overprovision, dtype=float)
            if omega.shape != (len(self.containers),):
                raise ValueError(
                    f"overprovision must be (N={len(self.containers)},), got {omega.shape}"
                )
            if (omega < 1.0).any():
                raise ValueError("overprovision factors must be >= 1")

    @property
    def horizon(self) -> int:
        return int(np.asarray(self.demand).shape[0])

    @property
    def num_resources(self) -> int:
        return len(self.machines[0].capacity)

    def omega(self) -> np.ndarray:
        """Effective omega_n vector (ones when not set)."""
        if self.overprovision is None:
            return np.ones(len(self.containers))
        return np.asarray(self.overprovision, dtype=float)

    def compatibility(self) -> np.ndarray:
        """Boolean ``(M, N)`` mask: container n may run on machine class m."""
        return np.array(
            [[c.fits(m) for c in self.containers] for m in self.machines],
            dtype=bool,
        )

    def idle_cost_per_interval(self, price: float) -> np.ndarray:
        """Idle energy cost of one active machine per class, for one interval."""
        hours = self.interval_seconds / 3600.0
        return np.array(
            [
                m.idle_watts / 1000.0 * hours * price * m.price_multiplier
                for m in self.machines
            ]
        )

    def container_energy_cost(self, price: float) -> np.ndarray:
        """``(M, N)`` energy cost of hosting one container for one interval.

        Implements the ``alpha_mr * c_nr / C_mr`` term of Eq. 14: a container
        of size ``c_nr`` raises machine utilization of resource ``r`` by
        ``c_nr / C_mr`` and therefore power by ``alpha_mr * c_nr / C_mr``.
        """
        hours = self.interval_seconds / 3600.0
        cost = np.zeros((len(self.machines), len(self.containers)))
        for i, machine in enumerate(self.machines):
            for j, container in enumerate(self.containers):
                watts = sum(
                    alpha * size / cap
                    for alpha, size, cap in zip(
                        machine.alpha_watts, container.size, machine.capacity
                    )
                )
                cost[i, j] = watts / 1000.0 * hours * price * machine.price_multiplier
        return cost


def build_problem(
    machine_models: tuple[MachineModel, ...],
    specs: dict[int, ContainerSpec],
    demand: np.ndarray,
    prices: np.ndarray,
    interval_seconds: float,
    weights: dict[int, float] | None = None,
    available: dict[int, int] | None = None,
    allowed_platforms: dict[int, frozenset[int] | None] | None = None,
    overprovision: np.ndarray | None = None,
) -> ProvisioningProblem:
    """Assemble a :class:`ProvisioningProblem` from catalog + container plan.

    Parameters
    ----------
    demand:
        ``(W, N)`` container demand, columns ordered by sorted class id.
    weights:
        Utility weight per class id; defaults to an SLO-derived weight that
        prices a scheduled container above its worst-case energy cost so the
        optimizer prefers scheduling whenever capacity exists.
    """
    machines = tuple(
        MachineClass.from_machine_model(
            model, None if available is None else available.get(model.platform_id)
        )
        for model in machine_models
    )
    class_ids = sorted(specs)
    demand = np.asarray(demand, dtype=float)
    if demand.ndim != 2 or demand.shape[1] != len(class_ids):
        raise ValueError(
            f"demand must be (W, {len(class_ids)}) matching sorted class ids, "
            f"got {demand.shape}"
        )
    peak_demand = demand.max(axis=0)
    containers = []
    for column, class_id in enumerate(class_ids):
        spec = specs[class_id]
        weight = None if weights is None else weights.get(class_id)
        if weight is None:
            weight = default_utility_weight(
                machines, spec, float(np.max(prices)), interval_seconds
            ) * group_utility_multiplier(spec)
        platforms = None
        if allowed_platforms is not None:
            platforms = allowed_platforms.get(class_id)
        containers.append(
            ContainerType.from_spec(
                spec,
                weight=weight,
                demand=max(float(peak_demand[column]), 1.0),
                allowed_platforms=platforms,
            )
        )
    return ProvisioningProblem(
        machines=machines,
        containers=tuple(containers),
        demand=demand,
        prices=np.asarray(prices, dtype=float),
        interval_seconds=interval_seconds,
        overprovision=overprovision,
    )


#: SLO-derived utility multipliers (Eq. 8: f_n comes from per-class SLOs).
#: Scheduling a production container is worth more than a gratis one, so
#: under capacity pressure the optimizer sheds low-priority work first —
#: mirroring the trace's priority semantics (Section III).
GROUP_UTILITY_MULTIPLIER = {
    "GRATIS": 1.0,
    "OTHER": 2.0,
    "PRODUCTION": 4.0,
}


def group_utility_multiplier(spec: ContainerSpec) -> float:
    """Priority-group utility multiplier for a container spec."""
    return GROUP_UTILITY_MULTIPLIER.get(spec.task_class.group.name, 1.0)


#: Below this worst-case hosting cost (in dollars per interval) a container
#: is treated as cost-free and given the fixed utility floor instead.
_MIN_WORST_CASE_COST = 1e-12


def default_utility_weight(
    machines: tuple[MachineClass, ...],
    spec: ContainerSpec,
    price: float,
    interval_seconds: float,
    margin: float = 3.0,
) -> float:
    """A utility weight that dominates the container's worst-case energy cost.

    Scheduling must be preferable to idling capacity whenever the demand is
    real, so the per-container utility is ``margin`` times the most expensive
    way to host it (full idle share plus dynamic power on the least efficient
    compatible machine class).
    """
    hours = interval_seconds / 3600.0
    worst = 0.0
    for machine in machines:
        if not all(s <= c + 1e-12 for s, c in zip(spec.demand, machine.capacity)):
            continue
        # Idle share: containers-per-machine at this size.
        fill = max(s / c for s, c in zip(spec.demand, machine.capacity))
        idle_share = machine.idle_watts * fill
        dynamic = sum(
            alpha * s / c
            for alpha, s, c in zip(machine.alpha_watts, spec.demand, machine.capacity)
        )
        cost = (idle_share + dynamic) / 1000.0 * hours * max(price, 0.01)
        worst = max(worst, cost)
    # No compatible machine (or a vanishingly small cost) still needs a
    # positive utility floor; tolerance instead of == 0.0 so a cost of a
    # few ulps does not produce a near-zero weight.
    if worst <= _MIN_WORST_CASE_COST:
        worst = 0.001
    return margin * worst
