"""Algorithm 1: the HARMONY MPC controller.

Every control period the controller:

1. feeds the latest per-class arrival counts to its predictors and forecasts
   the next ``W`` periods (line 4);
2. converts predicted rates (plus any observed backlog) into container
   demand via the M/G/N model (container manager);
3. solves CBS-RELAX over the horizon (line 5);
4. rounds step 0 with first-fit (Lemma 1) into an integer machine plan and
   per-(machine type, container type) quotas (lines 6-11);
5. carries the realized machine counts into the next period's switching
   costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.containers.manager import ContainerManager
from repro.energy.models import MachineModel
from repro.energy.prices import PriceSchedule, constant_price
from repro.forecasting.predictors import ArimaPredictor, Predictor
from repro.provisioning.model import ProvisioningProblem, build_problem
from repro.provisioning.relax import CbsRelaxSolver, RelaxSolution
from repro.provisioning.rounding import (
    FirstFitRounder,
    RoundedPlan,
    _largest_remainder_targets,
)


@dataclass(frozen=True)
class ControllerConfig:
    """Knobs for :class:`HarmonyController`.

    Attributes
    ----------
    interval_seconds:
        Control period length.
    horizon:
        W, the number of look-ahead periods in the MPC (Algorithm 1).
    price:
        Electricity price schedule (p_t).
    overprovision:
        Uniform omega applied to every container type (Eq. 17); 1.0 disables.
    utility_weights:
        Optional per-class utility weight override.
    predictor_factory:
        Builds one streaming predictor per task class; defaults to the
        paper's ARIMA.
    """

    interval_seconds: float = 300.0
    horizon: int = 4
    price: PriceSchedule = field(default_factory=constant_price)
    overprovision: float = 1.0
    utility_weights: dict[int, float] | None = None
    predictor_factory: Callable[[], Predictor] = ArimaPredictor

    def __post_init__(self) -> None:
        if self.interval_seconds <= 0:
            raise ValueError(f"interval_seconds must be positive, got {self.interval_seconds}")
        if self.horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {self.horizon}")
        if self.overprovision < 1.0:
            raise ValueError(f"overprovision must be >= 1, got {self.overprovision}")


@dataclass(frozen=True)
class ProvisioningDecision:
    """One control period's output, consumed by the cluster simulator.

    Attributes
    ----------
    time:
        Decision timestamp (start of the control period).
    active:
        Machines to keep powered per platform id.
    quotas:
        Per platform id, the cap on containers (tasks) of each class id;
        ``None`` means the scheduler is unrestricted (baseline).
    demand:
        The container demand vector the decision served (class id -> count).
    dropped:
        Containers the rounder could not place (class id -> count).
    """

    time: float
    active: dict[int, int]
    quotas: dict[int, dict[int, int]] | None
    demand: dict[int, float] = field(default_factory=dict)
    dropped: dict[int, int] = field(default_factory=dict)
    objective: float = 0.0

    def total_active(self) -> int:
        return sum(self.active.values())

    def to_state(self) -> dict:
        """Canonical-JSON-safe encoding for serve checkpoints.

        Int-keyed dicts are encoded as sorted ``[key, value]`` pair lists —
        ``json.dumps`` would silently stringify the keys, and a restored
        decision must compare equal to the original.
        """
        return {
            "time": self.time,
            "active": [[k, self.active[k]] for k in sorted(self.active)],
            "quotas": None
            if self.quotas is None
            else [
                [pid, [[c, q[c]] for c in sorted(q)]]
                for pid, q in sorted(self.quotas.items())
            ],
            "demand": [[k, self.demand[k]] for k in sorted(self.demand)],
            "dropped": [[k, self.dropped[k]] for k in sorted(self.dropped)],
            "objective": self.objective,
        }

    @classmethod
    def from_state(cls, state: dict) -> "ProvisioningDecision":
        return cls(
            time=float(state["time"]),
            active={int(k): int(v) for k, v in state["active"]},
            quotas=None
            if state["quotas"] is None
            else {
                int(pid): {int(c): int(n) for c, n in q}
                for pid, q in state["quotas"]
            },
            demand={int(k): float(v) for k, v in state["demand"]},
            dropped={int(k): int(v) for k, v in state["dropped"]},
            objective=float(state["objective"]),
        )


class HarmonyController:
    """The full heterogeneity-aware MPC controller (Algorithm 1)."""

    def __init__(
        self,
        machine_models: tuple[MachineModel, ...],
        manager: ContainerManager,
        config: ControllerConfig | None = None,
        allowed_platforms: dict[int, frozenset[int] | None] | None = None,
    ) -> None:
        if not machine_models:
            raise ValueError("need at least one machine model")
        self.machine_models = machine_models
        self.manager = manager
        self.config = config or ControllerConfig()
        self.allowed_platforms = allowed_platforms
        self.class_ids: list[int] = sorted(manager.specs)
        self._predictors: dict[int, Predictor] = {
            class_id: self.config.predictor_factory() for class_id in self.class_ids
        }
        self._previous_active = np.zeros(len(machine_models))
        self._solver = CbsRelaxSolver()
        self._rounder = FirstFitRounder()
        self.last_solution: RelaxSolution | None = None
        self.last_plan: RoundedPlan | None = None
        self.decisions: list[ProvisioningDecision] = []

    # ------------------------------------------------------------- observe

    def observe(self, arrival_counts: dict[int, float]) -> None:
        """Feed the arrival counts of the just-finished control period."""
        for class_id in self.class_ids:
            self._predictors[class_id].update(float(arrival_counts.get(class_id, 0.0)))

    def prime(self, mean_counts: dict[int, float], repeats: int = 16) -> None:
        """Warm-start predictors with historical mean arrival counts.

        Without priming, the first control periods forecast zero arrivals
        and the controller cold-starts with an empty cluster; in deployment
        HARMONY has weeks of trace history (Section III), which this stands
        in for.
        """
        if repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        for _ in range(repeats):
            self.observe(mean_counts)

    # -------------------------------------------------------------- decide

    def forecast_rates(self) -> np.ndarray:
        """``(W, N)`` predicted arrival rates (tasks/second) per class."""
        W = self.config.horizon
        rates = np.zeros((W, len(self.class_ids)))
        for column, class_id in enumerate(self.class_ids):
            counts = self._predictors[class_id].forecast(W)
            rates[:, column] = np.maximum(counts, 0.0) / self.config.interval_seconds
        return rates

    def container_demand(
        self,
        rates: np.ndarray,
        backlog: dict[int, int] | None = None,
        running: dict[int, int] | None = None,
    ) -> np.ndarray:
        """``(W, N)`` container demand: transient M/G/N occupancy projection.

        Current occupancy is running tasks plus the waiting backlog (both
        need containers immediately); future steps relax toward the
        steady-state offered load (see
        :meth:`repro.containers.manager.ContainerManager.transient_demand`).
        """
        W = rates.shape[0]
        backlog = backlog or {}
        running = running or {}
        demand = np.zeros_like(rates)
        for column, class_id in enumerate(self.class_ids):
            task_class = self.manager.spec(class_id).task_class
            occupancy = running.get(class_id, 0) + backlog.get(class_id, 0)
            for t in range(W):
                demand[t, column] = self.manager.transient_demand(
                    task_class,
                    float(rates[t, column]),
                    occupancy=occupancy,
                    step=t,
                    interval_seconds=self.config.interval_seconds,
                )
        return demand

    def committed_matrix(
        self, running_by_platform: dict[int, dict[int, int]] | None
    ) -> np.ndarray | None:
        """``(M, N)`` running-task stocks aligned with the problem layout."""
        if not running_by_platform:
            return None
        committed = np.zeros((len(self.machine_models), len(self.class_ids)))
        column = {class_id: n for n, class_id in enumerate(self.class_ids)}
        for m, model in enumerate(self.machine_models):
            for class_id, count in running_by_platform.get(model.platform_id, {}).items():
                if class_id in column:
                    committed[m, column[class_id]] = count
        return committed

    def build_problem(
        self,
        now: float,
        demand: np.ndarray,
        available: dict[int, int] | None = None,
    ) -> ProvisioningProblem:
        """Assemble the CBS instance for this control period."""
        W = self.config.horizon
        prices = np.array(
            [self.config.price(now + i * self.config.interval_seconds) for i in range(W)]
        )
        omega = None
        if self.config.overprovision > 1.0:
            omega = np.full(len(self.class_ids), self.config.overprovision)
        return build_problem(
            self.machine_models,
            self.manager.specs,
            demand=demand,
            prices=prices,
            interval_seconds=self.config.interval_seconds,
            weights=self.config.utility_weights,
            available=available,
            allowed_platforms=self.allowed_platforms,
            overprovision=omega,
        )

    def decide(
        self,
        now: float,
        backlog: dict[int, int] | None = None,
        available: dict[int, int] | None = None,
        running: dict[int, int] | None = None,
        running_by_platform: dict[int, dict[int, int]] | None = None,
        powered: dict[int, int] | None = None,
    ) -> ProvisioningDecision:
        """Run one control period of Algorithm 1 and return the plan.

        ``powered`` (actually-drawing machine counts per platform) replaces
        the previous decision's targets as z_{t-1} when provided: draining
        machines that could not power down yet are real, and the optimizer
        should price switching against reality rather than its own plan.
        """
        rates = self.forecast_rates()
        demand = self.container_demand(rates, backlog, running)
        problem = self.build_problem(now, demand, available)
        if powered is not None:
            initial_active = np.array(
                [float(powered.get(m.platform_id, 0)) for m in self.machine_models]
            )
        else:
            initial_active = self._previous_active
        solution = self._solver.solve(
            problem,
            initial_active=initial_active,
            committed=self.committed_matrix(running_by_platform),
        )
        plan = self._rounder.round(problem, solution, t=0)
        self.last_solution = solution
        self.last_plan = plan

        active = {
            model.platform_id: int(plan.active[m])
            for m, model in enumerate(self.machine_models)
        }
        # Quotas come from the LP assignment x (largest-remainder rounded),
        # not from the packed counts: the packing realizes machine counts,
        # while x is the scheduler-facing cap ("the controller is free to
        # schedule additional containers as long as the total number for
        # each n is at most x^{mn}", Algorithm 1).  Containers the packer
        # could not fit are still reported in ``dropped``.
        quota_targets = _largest_remainder_targets(solution.x[0])
        quotas: dict[int, dict[int, int]] = {}
        for m, model in enumerate(self.machine_models):
            quotas[model.platform_id] = {
                self.class_ids[n]: int(quota_targets[m, n])
                for n in range(len(self.class_ids))
                if quota_targets[m, n] > 0
            }
        decision = ProvisioningDecision(
            time=now,
            active=active,
            quotas=quotas,
            demand={
                self.class_ids[n]: float(demand[0, n]) for n in range(len(self.class_ids))
            },
            dropped={
                self.class_ids[n]: int(plan.dropped[n])
                for n in range(len(self.class_ids))
                if plan.dropped[n] > 0
            },
            objective=solution.objective,
        )
        self._previous_active = plan.active.astype(float)
        self.decisions.append(decision)
        return decision
