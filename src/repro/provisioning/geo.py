"""Geo-distributed capacity provisioning (extension).

The paper's introduction motivates run-time electricity prices (citing
Qureshi et al.'s "cutting the electric bill") and its related work covers
scheduling across geo-distributed data centers (Ren et al.).  This module
extends CBS to that setting: several data centers, each with its own fleet
and tariff, solved as **one** CBS-RELAX instance whose machine classes
carry per-DC price multipliers — so provisioning follows cheap energy
automatically, subject to optional per-class placement restrictions
(data-locality).

It reuses the single-cluster machinery end to end: the combined problem is
an ordinary :class:`~repro.provisioning.model.ProvisioningProblem`, solved
by :class:`~repro.provisioning.relax.CbsRelaxSolver` and rounded by
:class:`~repro.provisioning.rounding.FirstFitRounder`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.containers.sizing import ContainerSpec
from repro.energy.models import MachineModel
from repro.energy.prices import PriceSchedule, constant_price
from repro.provisioning.model import (
    ContainerType,
    MachineClass,
    ProvisioningProblem,
    default_utility_weight,
    group_utility_multiplier,
)


@dataclass(frozen=True)
class DataCenter:
    """One site: a fleet plus its electricity tariff.

    ``platform_offset`` namespaces the site's platform ids so the same
    Table II models can appear in several DCs without id collisions:
    the combined problem sees platform ``offset + model.platform_id``.
    """

    name: str
    fleet: tuple[MachineModel, ...]
    price: PriceSchedule = field(default_factory=constant_price)
    platform_offset: int = 0

    def __post_init__(self) -> None:
        if not self.fleet:
            raise ValueError(f"data center {self.name!r} needs a fleet")
        if self.platform_offset < 0:
            raise ValueError(f"platform_offset must be >= 0, got {self.platform_offset}")

    def platform_ids(self) -> tuple[int, ...]:
        return tuple(self.platform_offset + m.platform_id for m in self.fleet)


def auto_offsets(dcs: list[DataCenter]) -> list[DataCenter]:
    """Assign non-overlapping platform offsets (1000 per site)."""
    from dataclasses import replace

    return [replace(dc, platform_offset=1000 * i) for i, dc in enumerate(dcs)]


def build_geo_problem(
    dcs: list[DataCenter],
    specs: dict[int, ContainerSpec],
    demand: np.ndarray,
    interval_seconds: float,
    now: float = 0.0,
    horizon: int | None = None,
    reference_price: float | None = None,
    locality: dict[int, frozenset[str]] | None = None,
) -> ProvisioningProblem:
    """Combine several data centers into one CBS instance.

    Parameters
    ----------
    dcs:
        Data centers with distinct ``platform_offset`` values (see
        :func:`auto_offsets`).
    demand:
        ``(W, N)`` container demand over the horizon, columns ordered by
        sorted class id (total across sites — the optimizer decides where).
    reference_price:
        The problem's scalar ``p_t`` baseline; per-DC tariffs become
        multipliers relative to it, evaluated at ``now``.  Defaults to the
        mean of the DC prices at ``now``.
    locality:
        Optional map class id -> allowed DC names (data-locality
        constraint); absent classes may run anywhere.
    """
    demand = np.asarray(demand, dtype=float)
    W = demand.shape[0] if horizon is None else horizon
    class_ids = sorted(specs)
    if demand.shape != (W, len(class_ids)):
        raise ValueError(
            f"demand must be (W={W}, N={len(class_ids)}), got {demand.shape}"
        )
    offsets = [dc.platform_offset for dc in dcs]
    if len(set(offsets)) != len(offsets):
        raise ValueError("data centers must have distinct platform offsets")

    prices_now = [dc.price(now) for dc in dcs]
    if reference_price is None:
        reference_price = float(np.mean(prices_now))
    if reference_price <= 0:
        raise ValueError(f"reference_price must be positive, got {reference_price}")

    machines: list[MachineClass] = []
    dc_of_platform: dict[int, str] = {}
    for dc, dc_price in zip(dcs, prices_now):
        multiplier = dc_price / reference_price
        for model in dc.fleet:
            platform_id = dc.platform_offset + model.platform_id
            dc_of_platform[platform_id] = dc.name
            machines.append(
                MachineClass(
                    platform_id=platform_id,
                    name=f"{dc.name}/{model.name}",
                    capacity=(model.cpu_capacity, model.memory_capacity),
                    available=model.count,
                    idle_watts=model.power_model.idle_watts,
                    alpha_watts=model.power_model.alpha_watts,
                    switch_cost=model.switch_cost,
                    price_multiplier=multiplier,
                )
            )

    machine_tuple = tuple(machines)
    peak_demand = demand.max(axis=0)
    containers = []
    for column, class_id in enumerate(class_ids):
        spec = specs[class_id]
        weight = default_utility_weight(
            machine_tuple, spec, reference_price, interval_seconds
        ) * group_utility_multiplier(spec)
        allowed = None
        if locality is not None and class_id in locality:
            allowed_dcs = locality[class_id]
            allowed = frozenset(
                pid for pid, name in dc_of_platform.items() if name in allowed_dcs
            )
        containers.append(
            ContainerType(
                class_id=class_id,
                name=spec.task_class.name,
                size=(spec.cpu, spec.memory),
                utility=_capped(weight, max(float(peak_demand[column]), 1.0)),
                allowed_platforms=allowed,
            )
        )

    return ProvisioningProblem(
        machines=machine_tuple,
        containers=tuple(containers),
        demand=demand,
        prices=np.full(W, reference_price),
        interval_seconds=interval_seconds,
        metadata={"dc_of_platform": dc_of_platform},
    )


def _capped(weight: float, demand: float):
    from repro.provisioning.model import UtilityFunction

    return UtilityFunction.capped_linear(weight, demand)


def machines_by_dc(problem: ProvisioningProblem, z: np.ndarray) -> dict[str, float]:
    """Aggregate a (M,) machine vector by data center name."""
    dc_of_platform = problem.metadata.get("dc_of_platform", {})
    result: dict[str, float] = {}
    for m, machine in enumerate(problem.machines):
        dc = dc_of_platform.get(machine.platform_id, "?")
        result[dc] = result.get(dc, 0.0) + float(z[m])
    return result
