"""Rounding the fractional CBS-RELAX solution (Lemma 1, Algorithm 1).

Lemma 1: given a fractional solution with ``z*`` type-m machines and
``x*_n`` type-n containers, greedy first-fit places at least
``x*_n / (2|R|)`` containers of every type into ``z* + 1`` machines.

The practical rounder implemented here packs the *full* rounded counts
first-fit-decreasing into ``floor(z*) + 1`` machines (capped at
availability); whatever does not fit is reported as dropped, and the bench
``bench_rounding_guarantee`` verifies the Lemma 1 fraction always fits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.provisioning.model import ProvisioningProblem
from repro.provisioning.relax import RelaxSolution


@dataclass
class MachineAssignment:
    """Containers packed onto one physical machine."""

    platform_id: int
    capacity: tuple[float, ...]
    containers: dict[int, int] = field(default_factory=dict)
    used: np.ndarray = field(default_factory=lambda: np.zeros(2))
    #: Identifier within the plan (index assigned by the packer/planner).
    machine_id: int = -1

    def residual(self) -> np.ndarray:
        return np.asarray(self.capacity) - self.used

    def fits(self, size: tuple[float, ...]) -> bool:
        residual = self.residual()
        return all(s <= r + 1e-9 for s, r in zip(size, residual))

    def add(self, container_index: int, size: tuple[float, ...], count: int = 1) -> None:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        self.containers[container_index] = self.containers.get(container_index, 0) + count
        self.used = self.used + np.asarray(size) * count


def first_fit_pack(
    counts: np.ndarray,
    sizes: list[tuple[float, ...]],
    capacity: tuple[float, ...],
    max_machines: int,
    platform_id: int = 0,
    priorities: np.ndarray | None = None,
) -> tuple[list[MachineAssignment], np.ndarray]:
    """First-fit-decreasing packing of identical-per-type containers.

    Machines are filled sequentially; for each machine, container types are
    visited in decreasing (priority, max-dimension) order and as many
    instances as fit are placed.  When machines run out, low-priority types
    are the ones left over — so under saturation the rounder sheds gratis
    before production, matching the LP's utility ordering.  Returns the
    per-machine assignments and the leftover counts that did not fit within
    ``max_machines``.
    """
    counts = np.asarray(counts, dtype=int).copy()
    if counts.shape != (len(sizes),):
        raise ValueError(f"counts must align with sizes, got {counts.shape}")
    if (counts < 0).any():
        raise ValueError("counts must be non-negative")
    if max_machines < 0:
        raise ValueError(f"max_machines must be >= 0, got {max_machines}")
    if priorities is None:
        order = sorted(range(len(sizes)), key=lambda n: -max(sizes[n]))
    else:
        priorities = np.asarray(priorities, dtype=float)
        order = sorted(range(len(sizes)), key=lambda n: (-priorities[n], -max(sizes[n])))
    machines: list[MachineAssignment] = []
    capacity_arr = np.asarray(capacity, dtype=float)

    while counts.sum() > 0 and len(machines) < max_machines:
        machine = MachineAssignment(
            platform_id=platform_id,
            capacity=tuple(capacity),
            used=np.zeros(len(capacity)),
            machine_id=len(machines),
        )
        placed_any = False
        for n in order:
            if counts[n] == 0:
                continue
            size = np.asarray(sizes[n], dtype=float)
            residual = capacity_arr - machine.used
            # How many of this type still fit, in one shot.
            with np.errstate(divide="ignore"):
                per_dim = np.floor((residual + 1e-9) / size)
            fit = int(min(per_dim.min(), counts[n]))
            if fit > 0:
                machine.add(n, tuple(sizes[n]), fit)
                counts[n] -= fit
                placed_any = True
        if not placed_any:
            # Nothing fits an empty machine: the remaining types exceed
            # machine capacity outright; stop to avoid spinning.
            break
        machines.append(machine)

    return machines, counts


def _largest_remainder_targets(x: np.ndarray) -> np.ndarray:
    """Integer targets preserving per-container-type column sums.

    Naive per-cell ``rint`` zeroes out a class whose fractional assignment
    is split thinly across machine types (e.g. 0.4 + 0.4 rounds to 0 + 0),
    starving small-population classes.  Largest-remainder rounding keeps
    each column's total at ``ceil(sum_m x[m, n])``.
    """
    x = np.maximum(np.asarray(x, dtype=float), 0.0)
    base = np.floor(x).astype(int)
    result = base.copy()
    for n in range(x.shape[1]):
        total = int(math.ceil(x[:, n].sum() - 1e-9))
        deficit = total - int(base[:, n].sum())
        if deficit <= 0:
            continue
        remainders = x[:, n] - base[:, n]
        order = np.argsort(-remainders)
        for m in order[:deficit]:
            result[m, n] += 1
    return result


@dataclass(frozen=True)
class RoundedPlan:
    """Integer realization of one control step.

    Attributes
    ----------
    active:
        ``(M,)`` integer machines to power on per class.
    packed:
        ``(M, N)`` containers actually placed per (machine class, container
        type).
    dropped:
        ``(N,)`` containers the rounder could not place.
    assignments:
        Per machine class, the per-machine container maps (container *index*
        within the problem, not class id).
    """

    active: np.ndarray
    packed: np.ndarray
    dropped: np.ndarray
    assignments: tuple[tuple[MachineAssignment, ...], ...]

    def total_packed(self) -> np.ndarray:
        """(N,) containers placed across all machine classes."""
        return self.packed.sum(axis=0)

    def placement_ratio(self, target: np.ndarray) -> float:
        """Fraction of requested containers actually placed."""
        requested = float(np.asarray(target).sum())
        if requested == 0:
            return 1.0
        return float(self.total_packed().sum()) / requested


class FirstFitRounder:
    """Rounds a fractional CBS-RELAX step to an integer machine plan.

    The machine budget per type is ``ceil(z*) + extra_machines``.  For
    fractional z* this equals Lemma 1's ``floor(z*) + 1``; at integer z*
    the lemma's extra machine is only needed when the packing drops
    containers, and at small fleet scales a flat +1 per type is a
    measurable energy tax, so it is opt-in via ``extra_machines``.
    """

    def __init__(self, extra_machines: int = 0) -> None:
        if extra_machines < 0:
            raise ValueError(f"extra_machines must be >= 0, got {extra_machines}")
        self.extra_machines = extra_machines

    def round(
        self,
        problem: ProvisioningProblem,
        solution: RelaxSolution,
        t: int = 0,
    ) -> RoundedPlan:
        """Round horizon step ``t`` of a solved relaxation."""
        M = len(problem.machines)
        N = len(problem.containers)
        if not 0 <= t < solution.horizon:
            raise ValueError(f"step {t} outside horizon {solution.horizon}")
        # Packing uses TRUE container sizes: omega (Eq. 17) lives only in
        # the LP's capacity constraint, giving z headroom that exists
        # precisely to absorb the first-fit slack realized here.  Scaling
        # the packed sizes by omega as well would double-apply it.
        sizes = [c.size for c in problem.containers]
        # Marginal utility per container: the shedding order under scarcity.
        utility_priority = np.array(
            [c.utility.segments[0][1] for c in problem.containers]
        )

        active = np.zeros(M, dtype=int)
        packed = np.zeros((M, N), dtype=int)
        dropped = np.zeros(N, dtype=int)
        assignments: list[tuple[MachineAssignment, ...]] = []
        targets = _largest_remainder_targets(solution.x[t])

        for m, machine in enumerate(problem.machines):
            z_frac = float(solution.z[t, m])
            budget = min(
                int(math.ceil(z_frac - 1e-9)) + self.extra_machines,
                machine.available,
            )
            target = targets[m]
            machines_used, leftover = first_fit_pack(
                target,
                sizes,
                machine.capacity,
                max_machines=budget,
                platform_id=machine.platform_id,
                priorities=utility_priority,
            )
            active[m] = len(machines_used)
            for assignment in machines_used:
                for n, count in assignment.containers.items():
                    packed[m, n] += count
            dropped += leftover
            assignments.append(tuple(machines_used))

        return RoundedPlan(
            active=active,
            packed=packed,
            dropped=dropped,
            assignments=tuple(assignments),
        )

    def lemma1_scaled_counts(
        self, problem: ProvisioningProblem, solution: RelaxSolution, t: int = 0
    ) -> np.ndarray:
        """The ``x / (2|R|)`` per-(m, n) counts Lemma 1 guarantees placeable."""
        scale = 2 * problem.num_resources
        return np.floor(solution.x[t] / scale).astype(int)
