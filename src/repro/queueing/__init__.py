"""M/G/N scheduling-delay model (Section VI, Eqs. 1-2)."""

from repro.queueing.mgn import (
    MGNQueue,
    clear_queueing_caches,
    erlang_b,
    erlang_c,
    mgn_mean_wait,
    queueing_cache_info,
    required_containers,
)
from repro.queueing.simulate import QueueSimulationResult, simulate_mgn_queue

__all__ = [
    "MGNQueue",
    "erlang_b",
    "erlang_c",
    "mgn_mean_wait",
    "required_containers",
    "queueing_cache_info",
    "clear_queueing_caches",
    "QueueSimulationResult",
    "simulate_mgn_queue",
]
