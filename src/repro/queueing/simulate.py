"""Discrete-event M/G/N queue simulation.

A reference implementation used to validate the Eq. 1 approximation (tests
and ``bench_queueing_model``) and available to users who want to check the
container-count model against their own service-time distributions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


#: Absolute tolerance for classifying an SCV as exponential/deterministic;
#: well below any physically meaningful squared coefficient of variation.
_SCV_TOLERANCE = 1e-12


@dataclass(frozen=True)
class QueueSimulationResult:
    """Outcome of one M/G/N simulation run."""

    mean_wait: float
    p95_wait: float
    wait_probability: float
    utilization: float
    num_tasks: int


def simulate_mgn_queue(
    arrival_rate: float,
    service_rate: float,
    servers: int,
    scv: float = 1.0,
    num_tasks: int = 10_000,
    warmup_fraction: float = 0.25,
    seed: int = 0,
) -> QueueSimulationResult:
    """Simulate an M/G/N queue and measure waiting-time statistics.

    Service times are exponential for ``scv == 1`` and lognormal with
    matching first two moments otherwise.  The first ``warmup_fraction`` of
    tasks is discarded as transient.
    """
    if arrival_rate <= 0:
        raise ValueError(f"arrival_rate must be positive, got {arrival_rate}")
    if service_rate <= 0:
        raise ValueError(f"service_rate must be positive, got {service_rate}")
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    if scv < 0:
        raise ValueError(f"scv must be >= 0, got {scv}")
    if num_tasks < 10:
        raise ValueError(f"num_tasks must be >= 10, got {num_tasks}")
    if not 0 <= warmup_fraction < 1:
        raise ValueError(f"warmup_fraction must be in [0, 1), got {warmup_fraction}")

    rng = np.random.default_rng(seed)
    arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate, size=num_tasks))
    mean_service = 1.0 / service_rate
    # Branch on tolerance, not exact float equality: an scv that arrives as
    # 1.0 +/- 1 ulp from an upstream moment computation must select the
    # same (exponential) service-time model as an exact 1.0.
    if math.isclose(scv, 0.0, abs_tol=_SCV_TOLERANCE):
        services = np.full(num_tasks, mean_service)
    elif math.isclose(scv, 1.0, rel_tol=1e-9, abs_tol=_SCV_TOLERANCE):
        services = rng.exponential(mean_service, size=num_tasks)
    else:
        sigma2 = math.log(1.0 + scv)
        services = rng.lognormal(
            math.log(mean_service) - sigma2 / 2, math.sqrt(sigma2), size=num_tasks
        )

    free_at = np.zeros(servers)
    waits = np.empty(num_tasks)
    busy_time = 0.0
    for i in range(num_tasks):
        k = int(np.argmin(free_at))
        start = max(arrivals[i], free_at[k])
        waits[i] = start - arrivals[i]
        free_at[k] = start + services[i]
        busy_time += services[i]

    cut = int(num_tasks * warmup_fraction)
    steady = waits[cut:]
    horizon = float(free_at.max())
    return QueueSimulationResult(
        mean_wait=float(steady.mean()),
        p95_wait=float(np.percentile(steady, 95)),
        wait_probability=float((steady > 1e-12).mean()),
        utilization=min(busy_time / (servers * horizon), 1.0) if horizon > 0 else 0.0,
        num_tasks=int(steady.size),
    )
