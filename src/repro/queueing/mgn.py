"""The M/G/N queueing model behind container counting.

The paper models the queue of class-i tasks served by ``N`` containers as an
M/G/N queue.  Eq. 2 is the Erlang-C waiting probability

    pi_N = (N rho)^N / (N! (1 - rho)) * [ sum_{k<N} (N rho)^k / k!
            + (N rho)^N / (N! (1 - rho)) ]^{-1}

and Eq. 1 the Allen-Cunneen-style mean wait

    d ~= pi_N / (1 - rho) * (1 + CV^2) / 2 * 1 / (N mu)

where ``mu`` is the per-container service rate, ``rho = lambda / (N mu)``
the traffic intensity and ``CV^2`` the squared coefficient of variation of
service time.  :func:`required_containers` inverts Eq. 1: the smallest N
meeting a target mean delay with ``rho < 1``.

Erlang-C is computed through the numerically stable Erlang-B recurrence, so
N in the thousands poses no overflow risk.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.errors import CapacityModelUnstable

#: The MPC loop re-evaluates Eqs. 1-3 with the *same* (load, N) pairs at
#: every tick (the container manager's classes change slowly); memoizing the
#: O(N) Erlang recurrence and the O(log N)-probe inversion turns the
#: controller's hot path into dictionary lookups.  Sized generously: a key
#: is two floats + an int, so even full caches stay in the low MB.
_ERLANG_CACHE_SIZE = 65_536
_INVERSE_CACHE_SIZE = 16_384


@lru_cache(maxsize=_ERLANG_CACHE_SIZE)
def _erlang_b_cached(offered_load: float, servers: int) -> float:
    # Validated here (not only in the erlang_b wrapper) so the recurrence
    # itself can never run on a negative or NaN load, whichever entry
    # point reached it; lru_cache does not cache raises, so bad inputs
    # fail on every call.
    if not (offered_load >= 0):
        raise ValueError(f"offered_load must be >= 0, got {offered_load}")
    if servers < 0:
        raise ValueError(f"servers must be >= 0, got {servers}")
    blocking = 1.0
    for k in range(1, servers + 1):
        blocking = offered_load * blocking / (k + offered_load * blocking)
    return blocking


def erlang_b(offered_load: float, servers: int) -> float:
    """Erlang-B blocking probability via the stable recurrence.

    ``B(a, 0) = 1;  B(a, k) = a B(a, k-1) / (k + a B(a, k-1))``.
    """
    return _erlang_b_cached(offered_load, servers)


def erlang_c(offered_load: float, servers: int) -> float:
    """Erlang-C waiting probability (Eq. 2's pi_N).

    ``offered_load`` is ``a = lambda / mu = N rho``.  Requires ``a < N`` for
    a stable queue; returns 1.0 at or beyond saturation (every arrival
    waits).
    """
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    if offered_load < 0:
        raise ValueError(f"offered_load must be >= 0, got {offered_load}")
    if offered_load == 0:
        return 0.0
    if offered_load >= servers:
        return 1.0
    # Far above the offered load the wait probability is astronomically
    # small (sub-Gaussian in the slack); short-circuit so callers probing
    # large N (binary searches at data-center scale) stay O(1) instead of
    # paying the O(N) recurrence.
    if servers > offered_load + 12.0 * math.sqrt(offered_load) + 50.0:
        return 0.0
    blocking = erlang_b(offered_load, servers)
    rho = offered_load / servers
    return blocking / (1.0 - rho + rho * blocking)


def mgn_mean_wait(
    arrival_rate: float,
    service_rate: float,
    servers: int,
    scv: float = 1.0,
) -> float:
    """Mean scheduling delay of an M/G/N queue (Eq. 1).

    Parameters
    ----------
    arrival_rate:
        lambda, task arrivals per second.
    service_rate:
        mu, completions per second per container (1 / mean duration).
    servers:
        N, number of containers.
    scv:
        CV^2, squared coefficient of variation of service time
        (1.0 recovers M/M/N).

    Returns ``inf`` when the queue is unstable (rho >= 1).
    """
    if arrival_rate < 0:
        raise ValueError(f"arrival_rate must be >= 0, got {arrival_rate}")
    if service_rate <= 0:
        raise ValueError(f"service_rate must be positive, got {service_rate}")
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    if scv < 0:
        raise ValueError(f"scv must be >= 0, got {scv}")
    if arrival_rate == 0:
        return 0.0
    offered = arrival_rate / service_rate
    rho = offered / servers
    if rho >= 1.0:
        return math.inf
    pi = erlang_c(offered, servers)
    mmn_wait = pi / (servers * service_rate * (1.0 - rho))
    return mmn_wait * (1.0 + scv) / 2.0


def _halfin_whitt_wait_probability(beta: float) -> float:
    """Asymptotic P(wait) for N = a + beta*sqrt(a) servers (Halfin-Whitt).

    ``pi ~= [1 + beta * Phi(beta) / phi(beta)]^{-1}`` — exact in the
    many-server heavy-traffic limit, excellent for a >~ 100.
    """
    if beta <= 0:
        return 1.0
    phi = math.exp(-beta * beta / 2.0) / math.sqrt(2.0 * math.pi)
    big_phi = 0.5 * (1.0 + math.erf(beta / math.sqrt(2.0)))
    return 1.0 / (1.0 + beta * big_phi / phi)


def required_containers(
    arrival_rate: float,
    service_rate: float,
    target_delay: float,
    scv: float = 1.0,
    max_servers: int = 10_000_000,
) -> int:
    """Smallest N with ``rho < 1`` and mean wait <= ``target_delay``.

    Mean wait is monotonically decreasing in N.  Small offered loads use
    exponential search plus bisection on the exact Eq. 1; large offered
    loads (> ~2000 Erlangs, where each exact Erlang-C costs O(a)) start
    from the Halfin-Whitt square-root-staffing estimate and walk to the
    exact answer with a handful of O(a) evaluations.

    Results are memoized per exact argument tuple (the inverse-lookup
    cache): the container manager re-inverts the same (lambda, mu, SLO,
    CV^2) classes every control tick.

    Raises :class:`repro.errors.CapacityModelUnstable` (also a
    ``ValueError``) when no count within ``max_servers`` stabilizes the
    queue at the target delay — the degradation ladder classifies it by
    code and drops the tick to reactive provisioning.
    """
    if target_delay <= 0:
        raise ValueError(f"target_delay must be positive, got {target_delay}")
    if arrival_rate < 0:
        raise ValueError(f"arrival_rate must be >= 0, got {arrival_rate}")
    if service_rate <= 0:
        raise ValueError(f"service_rate must be positive, got {service_rate}")
    if arrival_rate == 0:
        return 0
    return _required_containers_cached(
        arrival_rate, service_rate, target_delay, scv, max_servers
    )


@lru_cache(maxsize=_INVERSE_CACHE_SIZE)
def _required_containers_cached(
    arrival_rate: float,
    service_rate: float,
    target_delay: float,
    scv: float,
    max_servers: int,
) -> int:
    offered = arrival_rate / service_rate
    low = int(math.floor(offered)) + 1  # smallest N with rho < 1
    if low > max_servers:
        raise CapacityModelUnstable(
            f"offered load {offered:.0f} exceeds max_servers {max_servers}",
            arrival_rate=arrival_rate,
            service_rate=service_rate,
            target_delay=target_delay,
            max_servers=max_servers,
        )
    if mgn_mean_wait(arrival_rate, service_rate, low, scv) <= target_delay:
        return low

    if offered > 2000.0:
        # Square-root staffing: find the smallest beta grid point whose
        # approximate wait meets the target, then correct with exact checks.
        sqrt_a = math.sqrt(offered)
        candidate = None
        for i in range(81):
            beta = 0.005 * (1.3 ** i)  # 0.005 .. ~5e8 (log grid)
            n = int(math.ceil(offered + beta * sqrt_a))
            slack = n * service_rate - arrival_rate
            if slack <= 0:
                continue
            wait = (
                _halfin_whitt_wait_probability(beta) * (1.0 + scv) / (2.0 * slack)
            )
            if wait <= target_delay * 0.95:
                candidate = max(n, low)
                break
        if candidate is None or candidate > max_servers:
            raise CapacityModelUnstable(
                f"no container count up to {max_servers} meets delay "
                f"{target_delay} (lambda={arrival_rate}, mu={service_rate})",
                arrival_rate=arrival_rate,
                service_rate=service_rate,
                target_delay=target_delay,
                max_servers=max_servers,
            )
        # Walk down while the exact wait still meets the target, then up if
        # the approximation undershot.  Steps of ~0.5% of sqrt(a) keep the
        # number of exact O(a) evaluations small.
        step = max(int(0.05 * sqrt_a), 1)
        while (
            candidate - step >= low
            and mgn_mean_wait(arrival_rate, service_rate, candidate - step, scv)
            <= target_delay
        ):
            candidate -= step
        while mgn_mean_wait(arrival_rate, service_rate, candidate, scv) > target_delay:
            candidate += 1
            if candidate > max_servers:
                raise CapacityModelUnstable(
                    f"no container count up to {max_servers} meets delay "
                    f"{target_delay} (lambda={arrival_rate}, mu={service_rate})",
                    arrival_rate=arrival_rate,
                    service_rate=service_rate,
                    target_delay=target_delay,
                    max_servers=max_servers,
                )
        # Refine to the exact minimum within the last step.
        while (
            candidate - 1 >= low
            and mgn_mean_wait(arrival_rate, service_rate, candidate - 1, scv)
            <= target_delay
        ):
            candidate -= 1
        return candidate

    # Exact exponential search + bisection for modest loads.
    high = low
    while mgn_mean_wait(arrival_rate, service_rate, high, scv) > target_delay:
        high *= 2
        if high > max_servers:
            raise CapacityModelUnstable(
                f"no container count up to {max_servers} meets delay "
                f"{target_delay} (lambda={arrival_rate}, mu={service_rate})",
                arrival_rate=arrival_rate,
                service_rate=service_rate,
                target_delay=target_delay,
                max_servers=max_servers,
            )
    while low + 1 < high:
        mid = (low + high) // 2
        if mgn_mean_wait(arrival_rate, service_rate, mid, scv) <= target_delay:
            high = mid
        else:
            low = mid
    return high


def queueing_cache_info() -> dict[str, dict[str, int]]:
    """Hit/miss statistics of the Erlang and inverse-lookup caches."""
    return {
        "erlang_b": _erlang_b_cached.cache_info()._asdict(),
        "required_containers": _required_containers_cached.cache_info()._asdict(),
    }


def clear_queueing_caches() -> None:
    """Drop both memoization caches (tests and memory-sensitive callers)."""
    _erlang_b_cached.cache_clear()
    _required_containers_cached.cache_clear()


@dataclass(frozen=True)
class MGNQueue:
    """Convenience wrapper bundling one class's queueing parameters."""

    arrival_rate: float
    service_rate: float
    scv: float = 1.0

    def __post_init__(self) -> None:
        if self.arrival_rate < 0:
            raise ValueError(f"arrival_rate must be >= 0, got {self.arrival_rate}")
        if self.service_rate <= 0:
            raise ValueError(f"service_rate must be positive, got {self.service_rate}")
        if self.scv < 0:
            raise ValueError(f"scv must be >= 0, got {self.scv}")

    @property
    def offered_load(self) -> float:
        """a = lambda / mu, in Erlangs."""
        return self.arrival_rate / self.service_rate

    def utilization(self, servers: int) -> float:
        """rho for a given container count."""
        if servers < 1:
            raise ValueError(f"servers must be >= 1, got {servers}")
        return self.offered_load / servers

    def wait_probability(self, servers: int) -> float:
        """pi_N (Eq. 2)."""
        return erlang_c(self.offered_load, servers)

    def mean_wait(self, servers: int) -> float:
        """Mean scheduling delay (Eq. 1)."""
        return mgn_mean_wait(self.arrival_rate, self.service_rate, servers, self.scv)

    def containers_for_delay(self, target_delay: float) -> int:
        """Invert Eq. 1 for a target mean delay."""
        return required_containers(
            self.arrival_rate, self.service_rate, target_delay, self.scv
        )
