"""Feature scaling for clustering.

Task sizes span several orders of magnitude (Section III-D), so clustering in
raw units would be dominated by the few largest tasks.  The classifier scales
features with a log transform followed by standardization, both provided
here with a fit/transform/inverse interface.
"""

from __future__ import annotations

import numpy as np


class StandardScaler:
    """Zero-mean, unit-variance standardization per feature."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "StandardScaler":
        data = np.asarray(data, dtype=float)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError(f"expected non-empty 2-D data, got shape {data.shape}")
        self.mean_ = data.mean(axis=0)
        std = data.std(axis=0)
        # Constant features map to zero, not NaN.  Exact equality is
        # deliberate here: numpy's std() returns exactly 0.0 for a
        # constant column, and any nonzero std — however tiny — is a
        # real scale that must be preserved.
        std[std == 0.0] = 1.0  # repro: noqa[DET004]
        self.std_ = std
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("StandardScaler.transform called before fit")
        return (np.asarray(data, dtype=float) - self.mean_) / self.std_

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        return self.fit(data).transform(data)

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.std_ is None:
            raise RuntimeError("StandardScaler.inverse_transform called before fit")
        return np.asarray(data, dtype=float) * self.std_ + self.mean_


class LogScaler:
    """Elementwise ``log10`` with a positivity floor, plus inverse.

    Appropriate for features like task size and duration whose heterogeneity
    spans orders of magnitude.
    """

    def __init__(self, floor: float = 1e-6) -> None:
        if floor <= 0:
            raise ValueError(f"floor must be positive, got {floor}")
        self.floor = floor

    def transform(self, data: np.ndarray) -> np.ndarray:
        return np.log10(np.maximum(np.asarray(data, dtype=float), self.floor))

    def inverse_transform(self, data: np.ndarray) -> np.ndarray:
        return np.power(10.0, np.asarray(data, dtype=float))

    # LogScaler is stateless; fit is provided for interface symmetry.
    def fit(self, data: np.ndarray) -> "LogScaler":
        return self

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        return self.transform(data)
