"""Choosing k: inertia curves, the elbow rule, and silhouette scores.

Section IX-A: "the best value of k for each priority group is selected as the
one for which no significant benefit can be achieved by increasing the value
of k" — i.e. the elbow rule on the inertia curve, implemented here as the
smallest k whose marginal relative inertia improvement falls below a
threshold.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.kmeans import KMeans, _squared_distances


def inertia_curve(
    data: np.ndarray,
    k_values: list[int] | range,
    seed: int = 0,
    n_init: int = 2,
) -> dict[int, float]:
    """Inertia of the best K-means fit for each candidate k."""
    data = np.asarray(data, dtype=float)
    curve: dict[int, float] = {}
    for k in k_values:
        result = KMeans(k=k, n_init=n_init, seed=seed).fit(data)
        curve[k] = result.inertia
    return curve


def select_k_elbow(
    data: np.ndarray,
    k_max: int = 12,
    improvement_threshold: float = 0.05,
    seed: int = 0,
) -> tuple[int, dict[int, float]]:
    """Pick k with the elbow rule.

    Starting from k=1, accept k+1 while it reduces inertia by more than
    ``improvement_threshold`` of the *total* (k=1) inertia; stop at the
    first k whose marginal gain is insignificant.  Normalizing by the k=1
    inertia (rather than the current one) makes the rule converge: past the
    elbow, each extra cluster shaves a roughly constant *fraction* of the
    residual, which would never fall below a current-relative threshold.

    Returns
    -------
    (k, curve):
        The selected k and the full inertia curve for reporting.
    """
    if k_max < 1:
        raise ValueError(f"k_max must be >= 1, got {k_max}")
    data = np.asarray(data, dtype=float)
    if data.ndim == 1:
        data = data[:, None]
    k_cap = min(k_max, data.shape[0])
    curve = inertia_curve(data, range(1, k_cap + 1), seed=seed)
    total = curve[1]
    if total <= 0:
        return 1, curve
    selected = k_cap
    for k in range(1, k_cap):
        if (curve[k] - curve[k + 1]) / total < improvement_threshold:
            selected = k
            break
    return selected, curve


def silhouette_score(data: np.ndarray, labels: np.ndarray, sample_cap: int = 2000,
                     seed: int = 0) -> float:
    """Mean silhouette coefficient (subsampled for large n).

    Complements the elbow rule when validating cluster quality in tests.
    """
    data = np.asarray(data, dtype=float)
    labels = np.asarray(labels)
    if data.shape[0] != labels.shape[0]:
        raise ValueError("data and labels must align")
    unique = np.unique(labels)
    if unique.size < 2:
        return 0.0
    n = data.shape[0]
    if n > sample_cap:
        rng = np.random.default_rng(seed)
        idx = rng.choice(n, size=sample_cap, replace=False)
        data, labels = data[idx], labels[idx]
        unique = np.unique(labels)
        if unique.size < 2:
            return 0.0

    scores = []
    members = {label: data[labels == label] for label in unique}
    for i, point in enumerate(data):
        own = labels[i]
        own_members = members[own]
        if own_members.shape[0] <= 1:
            scores.append(0.0)
            continue
        d_own = np.sqrt(_squared_distances(own_members, point[None, :])).ravel()
        a = d_own.sum() / (own_members.shape[0] - 1)
        b = np.inf
        for label in unique:
            if label == own:
                continue
            d_other = np.sqrt(_squared_distances(members[label], point[None, :])).ravel()
            b = min(b, float(d_other.mean()))
        denom = max(a, b)
        scores.append(0.0 if denom == 0 else (b - a) / denom)
    return float(np.mean(scores))
