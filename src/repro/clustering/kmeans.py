"""Lloyd's K-means with k-means++ seeding.

Implements the "standard K-means" the paper relies on for task
characterization.  Pure numpy; deterministic given a seed; empty clusters are
repaired by re-seeding them at the points farthest from their centroid.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of a K-means fit.

    Attributes
    ----------
    centroids:
        ``(k, d)`` array of cluster centers.
    labels:
        ``(n,)`` integer assignment of each sample.
    inertia:
        Sum of squared distances of samples to their centroid.
    n_iter:
        Lloyd iterations performed.
    converged:
        Whether assignments stopped changing before ``max_iter``.
    reseeds:
        Empty-cluster repairs performed during the winning restart.
    collapsed:
        Whether ``k`` was reduced to the number of distinct points (the
        zero-variance / duplicate-heavy degenerate case).
    """

    centroids: np.ndarray
    labels: np.ndarray
    inertia: float
    n_iter: int
    converged: bool
    reseeds: int = 0
    collapsed: bool = False

    @property
    def k(self) -> int:
        return self.centroids.shape[0]

    def cluster_sizes(self) -> np.ndarray:
        """Number of samples per cluster."""
        return np.bincount(self.labels, minlength=self.k)

    def cluster_std(self, data: np.ndarray) -> np.ndarray:
        """Per-cluster, per-feature standard deviation, ``(k, d)``."""
        data = np.asarray(data, dtype=float)
        stds = np.zeros_like(self.centroids)
        for j in range(self.k):
            members = data[self.labels == j]
            if members.shape[0] > 1:
                stds[j] = members.std(axis=0)
        return stds


def _squared_distances(data: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances, ``(n, k)``."""
    # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2 — fast and memory-friendly
    # for the (n ~ 1e5, k ~ 10) shapes we see.
    x_sq = np.einsum("ij,ij->i", data, data)[:, None]
    c_sq = np.einsum("ij,ij->i", centroids, centroids)[None, :]
    cross = data @ centroids.T
    distances = x_sq - 2.0 * cross + c_sq
    np.maximum(distances, 0.0, out=distances)
    return distances


def kmeans_plus_plus_init(
    data: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding (Arthur & Vassilvitskii 2007)."""
    n = data.shape[0]
    centroids = np.empty((k, data.shape[1]), dtype=float)
    first = int(rng.integers(n))
    centroids[0] = data[first]
    closest_sq = _squared_distances(data, centroids[:1]).ravel()
    for j in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            # All points coincide with chosen centers; fall back to uniform.
            choice = int(rng.integers(n))
        else:
            choice = int(rng.choice(n, p=closest_sq / total))
        centroids[j] = data[choice]
        new_sq = _squared_distances(data, centroids[j : j + 1]).ravel()
        np.minimum(closest_sq, new_sq, out=closest_sq)
    return centroids


class KMeans:
    """K-means estimator with a minimal fit/predict interface.

    Parameters
    ----------
    k:
        Number of clusters.
    n_init:
        Independent k-means++ restarts; the fit with lowest inertia wins.
    max_iter:
        Lloyd iteration cap per restart.
    tol:
        Relative centroid-shift convergence tolerance.
    seed:
        Seed for the estimator's private generator.
    """

    def __init__(
        self,
        k: int,
        n_init: int = 4,
        max_iter: int = 200,
        tol: float = 1e-6,
        seed: int = 0,
    ) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if n_init < 1:
            raise ValueError(f"n_init must be >= 1, got {n_init}")
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        self.k = k
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.result: KMeansResult | None = None

    def fit(self, data: np.ndarray) -> KMeansResult:
        """Fit on ``(n, d)`` data; returns (and stores) the best result."""
        data = np.asarray(data, dtype=float)
        if data.ndim == 1:
            data = data[:, None]
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape}")
        n = data.shape[0]
        if n == 0:
            raise ValueError("cannot fit K-means on empty data")
        if not np.isfinite(data).all():
            raise ValueError("data contains NaN or infinite values")
        k = min(self.k, n)
        collapsed = False
        if k > 1:
            # Degenerate data (zero-variance features, duplicate-heavy dirty
            # traces) can have fewer distinct points than clusters; every
            # surplus cluster would then thrash through empty-cluster
            # reseeds without ever separating.  Collapse k to the distinct
            # count — deterministic, and exact for such data.
            distinct = np.unique(data, axis=0).shape[0]
            if distinct < k:
                k = distinct
                collapsed = True

        rng = np.random.default_rng(self.seed)
        best: KMeansResult | None = None
        for _ in range(self.n_init):
            result = self._fit_once(data, k, rng)
            if best is None or result.inertia < best.inertia:
                best = result
        assert best is not None
        if collapsed:
            best = replace(best, collapsed=True)
        self.result = best
        return best

    def _fit_once(
        self, data: np.ndarray, k: int, rng: np.random.Generator
    ) -> KMeansResult:
        centroids = kmeans_plus_plus_init(data, k, rng)
        labels = np.full(data.shape[0], -1, dtype=int)
        converged = False
        n_iter = 0
        reseeds = 0
        for n_iter in range(1, self.max_iter + 1):
            distances = _squared_distances(data, centroids)
            new_labels = distances.argmin(axis=1)
            new_centroids = np.empty_like(centroids)
            for j in range(k):
                members = data[new_labels == j]
                if members.shape[0] == 0:
                    # Empty cluster: re-seed at the point farthest from its
                    # assigned centroid (classic repair strategy).
                    farthest = distances[np.arange(len(new_labels)), new_labels].argmax()
                    new_centroids[j] = data[farthest]
                    new_labels[farthest] = j
                    reseeds += 1
                else:
                    new_centroids[j] = members.mean(axis=0)
            shift = float(np.linalg.norm(new_centroids - centroids))
            scale = float(np.linalg.norm(centroids)) or 1.0
            same_assignment = bool(np.array_equal(new_labels, labels))
            centroids, labels = new_centroids, new_labels
            if same_assignment or shift / scale < self.tol:
                converged = True
                break
        final_distances = _squared_distances(data, centroids)
        inertia = float(final_distances[np.arange(len(labels)), labels].sum())
        return KMeansResult(
            centroids=centroids,
            labels=labels,
            inertia=inertia,
            n_iter=n_iter,
            converged=converged,
            reseeds=reseeds,
        )

    def predict(self, data: np.ndarray) -> np.ndarray:
        """Assign new samples to the nearest fitted centroid."""
        if self.result is None:
            raise RuntimeError("KMeans.predict called before fit")
        data = np.asarray(data, dtype=float)
        if data.ndim == 1:
            data = data[:, None]
        return _squared_distances(data, self.result.centroids).argmin(axis=1)

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Distances from samples to every fitted centroid, ``(n, k)``."""
        if self.result is None:
            raise RuntimeError("KMeans.transform called before fit")
        data = np.asarray(data, dtype=float)
        if data.ndim == 1:
            data = data[:, None]
        return np.sqrt(_squared_distances(data, self.result.centroids))
