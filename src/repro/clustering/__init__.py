"""K-means clustering substrate.

The paper uses "standard K-means clustering" (Sections IV-V) to divide the
workload into task classes.  No clustering library is assumed: this package
implements Lloyd's algorithm with k-means++ seeding, feature scaling, and
k-selection heuristics from scratch.
"""

from repro.clustering.kmeans import KMeans, KMeansResult
from repro.clustering.scaling import StandardScaler, LogScaler
from repro.clustering.selection import select_k_elbow, inertia_curve, silhouette_score

__all__ = [
    "KMeans",
    "KMeansResult",
    "StandardScaler",
    "LogScaler",
    "select_k_elbow",
    "inertia_curve",
    "silhouette_score",
]
