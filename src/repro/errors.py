"""Structured error taxonomy for the reproduction pipeline.

Every failure the runner, provisioning stack or simulator can surface is
an instance of :class:`ReproError`, carrying a stable machine-readable
``code`` (for journals, reports and CI assertions) plus free-form
``context`` keyword details.  The hierarchy is intentionally shallow —
three families matching the three places things go wrong:

``ScenarioError``
    A unit of bench work misbehaved: it timed out (:class:`ScenarioTimeout`),
    its worker process died (:class:`ScenarioCrash`), or the task itself
    raised (:class:`ScenarioFailed`).  The supervisor retries these and
    quarantines scenarios that keep failing.
``SolverError``
    The optimization layer could not produce a plan.
    :class:`SolverInfeasible` subclasses :class:`RuntimeError` as well, so
    pre-taxonomy ``except RuntimeError`` call sites keep working.
``TraceCorrupt``
    Data that should be trustworthy is not: non-finite floats in a summary
    headed for canonical JSON (:class:`NonFiniteSummary`, also a
    ``ValueError``), a journal line whose digest does not match its
    payload (:class:`JournalCorrupt`), or a trace CSV cell that does not
    parse (:class:`TraceFieldCorrupt`, also a ``ValueError``).
``CapacityModelError``
    The analytic capacity models produced something unusable: an M/G/N
    queue that cannot be stabilized at any container count
    (:class:`CapacityModelUnstable`) or degenerate Gaussian moments fed to
    Eq. 3 sizing (:class:`ContainerSizingError`).  Both are also
    ``ValueError`` so pre-taxonomy call sites keep working, and both carry
    stable codes the control-plane degradation ladder records when it
    absorbs them mid-tick.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for structured pipeline errors.

    Parameters
    ----------
    message:
        Human-readable description.
    **context:
        Arbitrary machine-readable details (scenario name, attempt number,
        timeout budget, ...), kept on :attr:`context` and rendered into
        ``str(error)``.
    """

    #: Stable machine-readable identifier for this error family.
    code = "repro_error"

    def __init__(self, message: str, **context) -> None:
        super().__init__(message)
        self.message = message
        self.context = context

    def __str__(self) -> str:
        if not self.context:
            return self.message
        details = ", ".join(f"{k}={v!r}" for k, v in sorted(self.context.items()))
        return f"{self.message} ({details})"


# --------------------------------------------------------------- scenarios


class ScenarioError(ReproError):
    """A bench scenario failed to produce a result."""

    code = "scenario_error"


class ScenarioTimeout(ScenarioError):
    """A scenario exceeded its per-attempt wall-clock budget."""

    code = "scenario_timeout"


class ScenarioCrash(ScenarioError):
    """A scenario's worker process died without reporting a result."""

    code = "scenario_crash"


class ScenarioFailed(ScenarioError):
    """A scenario task raised instead of returning a summary."""

    code = "scenario_failed"


# ------------------------------------------------------------------ solver


class SolverError(ReproError):
    """The optimization layer could not produce a usable plan."""

    code = "solver_error"


class SolverInfeasible(SolverError, RuntimeError):
    """CBS-RELAX (or a downstream rounder) failed to solve an instance.

    Also a :class:`RuntimeError` so callers written before the taxonomy
    (``except RuntimeError``) still catch it.
    """

    code = "solver_infeasible"


# -------------------------------------------------------------------- data


class TraceCorrupt(ReproError):
    """Data that must be trustworthy (trace, summary, journal) is not."""

    code = "trace_corrupt"


class NonFiniteSummary(TraceCorrupt, ValueError):
    """A summary headed for canonical JSON contains NaN/Inf floats.

    Also a :class:`ValueError` (what :func:`json.dumps` raises with
    ``allow_nan=False``) so generic JSON error handling still applies.
    """

    code = "non_finite_summary"


class JournalCorrupt(TraceCorrupt):
    """A journal line's digest does not match its payload."""

    code = "journal_corrupt"


class TraceFieldCorrupt(TraceCorrupt, ValueError):
    """A trace CSV cell failed to parse or a required column is missing.

    Carries ``row`` (1-based data row number), ``column`` and ``value``
    context so a malformed cell is locatable without re-parsing the file.
    Also a :class:`ValueError` (what the bare ``float()``/``int()`` casts
    used to raise) so generic CSV error handling still applies.
    """

    code = "trace_field_corrupt"


# ------------------------------------------------------------------- serve


class ServeError(ReproError):
    """The online control-plane daemon (``repro serve``) misbehaved."""

    code = "serve_error"


class ConfigInvalid(ServeError, ValueError):
    """A serve config (startup or hot-reload candidate) failed validation.

    Hot reload treats this as a rejection: the candidate is discarded and
    the daemon keeps running on its previous config.  Also a
    :class:`ValueError` so generic validation call sites keep working.
    """

    code = "config_invalid"


class ControlStepFailed(ServeError):
    """One control-step attempt raised and was absorbed by the watchdog.

    Carries ``tick`` and ``attempt`` context; the watchdog retries with
    deterministic backoff and, once attempts are exhausted, applies the
    tick as a last-known-good hold instead of crashing the daemon.
    """

    code = "control_step_failed"


# ---------------------------------------------------------------- capacity


class CapacityModelError(ReproError):
    """An analytic capacity model (Eqs. 1-3) produced unusable output."""

    code = "capacity_model_error"


class CapacityModelUnstable(CapacityModelError, ValueError):
    """No container count within bounds stabilizes the M/G/N queue.

    Raised by :func:`repro.queueing.mgn.required_containers` when the
    offered load exceeds ``max_servers`` or no count meets the delay
    target.  Also a :class:`ValueError` for pre-taxonomy callers; the
    degradation ladder classifies it by ``code`` and falls back to
    reactive provisioning instead of crashing the tick.
    """

    code = "capacity_model_unstable"


class ContainerSizingError(CapacityModelError, ValueError):
    """Eq. 3 sizing was fed degenerate moments (NaN/Inf mean or sigma).

    Also a :class:`ValueError` so existing ``except ValueError`` sizing
    call sites keep working.
    """

    code = "container_sizing_error"


__all__ = [
    "ReproError",
    "ScenarioError",
    "ScenarioTimeout",
    "ScenarioCrash",
    "ScenarioFailed",
    "SolverError",
    "SolverInfeasible",
    "TraceCorrupt",
    "NonFiniteSummary",
    "JournalCorrupt",
    "TraceFieldCorrupt",
    "ServeError",
    "ConfigInvalid",
    "ControlStepFailed",
    "CapacityModelError",
    "CapacityModelUnstable",
    "ContainerSizingError",
]
