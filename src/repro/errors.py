"""Structured error taxonomy for the reproduction pipeline.

Every failure the runner, provisioning stack or simulator can surface is
an instance of :class:`ReproError`, carrying a stable machine-readable
``code`` (for journals, reports and CI assertions) plus free-form
``context`` keyword details.  The hierarchy is intentionally shallow —
three families matching the three places things go wrong:

``ScenarioError``
    A unit of bench work misbehaved: it timed out (:class:`ScenarioTimeout`),
    its worker process died (:class:`ScenarioCrash`), or the task itself
    raised (:class:`ScenarioFailed`).  The supervisor retries these and
    quarantines scenarios that keep failing.
``SolverError``
    The optimization layer could not produce a plan.
    :class:`SolverInfeasible` subclasses :class:`RuntimeError` as well, so
    pre-taxonomy ``except RuntimeError`` call sites keep working.
``TraceCorrupt``
    Data that should be trustworthy is not: non-finite floats in a summary
    headed for canonical JSON (:class:`NonFiniteSummary`, also a
    ``ValueError``) or a journal line whose digest does not match its
    payload (:class:`JournalCorrupt`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for structured pipeline errors.

    Parameters
    ----------
    message:
        Human-readable description.
    **context:
        Arbitrary machine-readable details (scenario name, attempt number,
        timeout budget, ...), kept on :attr:`context` and rendered into
        ``str(error)``.
    """

    #: Stable machine-readable identifier for this error family.
    code = "repro_error"

    def __init__(self, message: str, **context) -> None:
        super().__init__(message)
        self.message = message
        self.context = context

    def __str__(self) -> str:
        if not self.context:
            return self.message
        details = ", ".join(f"{k}={v!r}" for k, v in sorted(self.context.items()))
        return f"{self.message} ({details})"


# --------------------------------------------------------------- scenarios


class ScenarioError(ReproError):
    """A bench scenario failed to produce a result."""

    code = "scenario_error"


class ScenarioTimeout(ScenarioError):
    """A scenario exceeded its per-attempt wall-clock budget."""

    code = "scenario_timeout"


class ScenarioCrash(ScenarioError):
    """A scenario's worker process died without reporting a result."""

    code = "scenario_crash"


class ScenarioFailed(ScenarioError):
    """A scenario task raised instead of returning a summary."""

    code = "scenario_failed"


# ------------------------------------------------------------------ solver


class SolverError(ReproError):
    """The optimization layer could not produce a usable plan."""

    code = "solver_error"


class SolverInfeasible(SolverError, RuntimeError):
    """CBS-RELAX (or a downstream rounder) failed to solve an instance.

    Also a :class:`RuntimeError` so callers written before the taxonomy
    (``except RuntimeError``) still catch it.
    """

    code = "solver_infeasible"


# -------------------------------------------------------------------- data


class TraceCorrupt(ReproError):
    """Data that must be trustworthy (trace, summary, journal) is not."""

    code = "trace_corrupt"


class NonFiniteSummary(TraceCorrupt, ValueError):
    """A summary headed for canonical JSON contains NaN/Inf floats.

    Also a :class:`ValueError` (what :func:`json.dumps` raises with
    ``allow_nan=False``) so generic JSON error handling still applies.
    """

    code = "non_finite_summary"


class JournalCorrupt(TraceCorrupt):
    """A journal line's digest does not match its payload."""

    code = "journal_corrupt"


__all__ = [
    "ReproError",
    "ScenarioError",
    "ScenarioTimeout",
    "ScenarioCrash",
    "ScenarioFailed",
    "SolverError",
    "SolverInfeasible",
    "TraceCorrupt",
    "NonFiniteSummary",
    "JournalCorrupt",
]
