"""Composable fault injection for the cluster simulator.

Fig. 8's monitoring module "reports any failures and anomalies to the
management framework"; this module is where those failures come from.  A
:class:`FaultPlan` composes scripted and stochastic fault specs; a
:class:`FaultInjector` drives them through the simulator's event queue so
faults interleave deterministically with arrivals, finishes and control
ticks.  Fault kinds:

- :class:`CorrelatedOutage` -- a power/rack domain failure taking down a
  contiguous slice of one machine pool at once;
- :class:`MachineDegradation` -- stragglers: a sampled subset of a pool
  runs its tasks at a slowdown factor for a while;
- :class:`MonitoringBlackout` -- the controller sees zero arrival counts
  for ``intervals`` control periods (the telemetry pipeline is down, the
  cluster is not);
- :class:`RandomMachineFailures` -- independent Poisson crashes per
  powered machine-hour (the legacy ``failure_rate_per_machine_hour``
  behaviour, now one composable spec among the others);
- the fabric specs from :mod:`repro.resilience.fabric` --
  :class:`~repro.resilience.fabric.LinkDegradation` (correlated link
  brownout stretching cross-cell service times),
  :class:`~repro.resilience.fabric.PartialPartition` (a cut severing cell
  pairs) and :class:`~repro.resilience.fabric.FlappingLink` (one link
  oscillating down/up) -- mutating a
  :class:`~repro.resilience.fabric.FabricState` the simulator reacts to.

The injector decides *what* fails and *when*; the mechanics of killing
tasks, releasing quota stocks and rescheduling finishes stay inside
:class:`~repro.simulation.cluster.ClusterSimulator`, which exposes the
``crash_machine`` / ``rescale_machine`` / ``schedule_fault`` hooks the
injector calls.  This module intentionally imports nothing from
:mod:`repro.simulation` so the layering keeps pointing downward.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Union

import numpy as np

from repro.resilience.fabric import (
    FABRIC_FAULT_TYPES,
    FabricState,
    FabricTopology,
    FlappingLink,
    LinkDegradation,
    PartialPartition,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.cluster import ClusterSimulator
    from repro.simulation.machine import MachinePool


@dataclass(frozen=True)
class CorrelatedOutage:
    """A correlated domain failure: a slice of one pool dies at once.

    Models a power/rack domain outage — the first
    ``ceil(fraction * pool_size)`` machines of the pool (a fixed "domain"
    slice, so repeated runs hit the same machines) crash simultaneously at
    ``time``.  Running tasks are killed and restart elsewhere; the machines
    stay under repair for ``repair_seconds``.
    """

    time: float
    fraction: float
    #: Platform to hit; ``None`` hits every pool (a site-wide event).
    platform_id: int | None = None
    repair_seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"time must be >= 0, got {self.time}")
        if not 0 < self.fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction}")
        if self.repair_seconds < 0:
            raise ValueError(f"repair_seconds must be >= 0, got {self.repair_seconds}")


@dataclass(frozen=True)
class MachineDegradation:
    """Stragglers: sampled machines run tasks ``slowdown``× slower.

    Starting at ``time`` a random ``fraction`` of the pool's machines are
    degraded for ``duration`` seconds.  Tasks already running there have
    their remaining work stretched by the slowdown; tasks placed on a
    degraded machine take ``duration * slowdown`` end to end.
    """

    time: float
    duration: float
    fraction: float
    slowdown: float = 2.0
    platform_id: int | None = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"time must be >= 0, got {self.time}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if not 0 < self.fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction}")
        if self.slowdown <= 1.0:
            raise ValueError(f"slowdown must be > 1, got {self.slowdown}")


@dataclass(frozen=True)
class MonitoringBlackout:
    """The monitoring pipeline goes dark for ``intervals`` control periods.

    The cluster keeps running, but the arrival counts handed to the policy
    read zero — the poisoned-telemetry scenario a predictor-driven
    controller must not trust blindly (see
    :class:`repro.resilience.guard.GuardedController`).
    """

    time: float
    intervals: int = 3

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"time must be >= 0, got {self.time}")
        if self.intervals < 1:
            raise ValueError(f"intervals must be >= 1, got {self.intervals}")


@dataclass(frozen=True)
class RandomMachineFailures:
    """Independent Poisson crashes per powered machine-hour.

    The legacy ``ClusterConfig.failure_rate_per_machine_hour`` behaviour:
    each control interval, each pool loses a Poisson-sampled number of its
    powered machines.
    """

    rate_per_machine_hour: float
    repair_seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.rate_per_machine_hour < 0:
            raise ValueError(
                f"rate_per_machine_hour must be >= 0, got {self.rate_per_machine_hour}"
            )
        if self.repair_seconds < 0:
            raise ValueError(f"repair_seconds must be >= 0, got {self.repair_seconds}")


FaultSpec = Union[
    CorrelatedOutage,
    MachineDegradation,
    MonitoringBlackout,
    RandomMachineFailures,
    LinkDegradation,
    PartialPartition,
    FlappingLink,
]


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, composable collection of fault specs for one run."""

    faults: tuple[FaultSpec, ...] = ()
    #: Seeds the injector's RNG (Poisson sampling, straggler selection).
    seed: int = 0
    #: Fabric graph the plan's fabric faults play out on.  ``None`` (the
    #: default) derives a full mesh over the simulated fleet's platform
    #: ids with the smallest id as the ingest cell.
    topology: FabricTopology | None = None

    def with_fault(self, fault: FaultSpec) -> "FaultPlan":
        """A new plan with ``fault`` appended."""
        return replace(self, faults=self.faults + (fault,))

    @property
    def has_faults(self) -> bool:
        return bool(self.faults)

    @classmethod
    def poisson(
        cls, rate_per_machine_hour: float, repair_seconds: float = 3600.0, seed: int = 0
    ) -> "FaultPlan":
        """The legacy Poisson-crash preset as a one-spec plan."""
        if rate_per_machine_hour <= 0:
            return cls(seed=seed)
        return cls(
            faults=(RandomMachineFailures(rate_per_machine_hour, repair_seconds),),
            seed=seed,
        )


@dataclass(frozen=True)
class _DegradationEnd:
    """Internal event payload: restore a degradation's machines."""

    fault: MachineDegradation


@dataclass(frozen=True)
class _LinksDegrade:
    """Internal event payload: start/end one link-degradation window."""

    links: tuple[tuple[int, int], ...]
    stretch: float
    start: bool


@dataclass(frozen=True)
class _LinksSever:
    """Internal event payload: cut or heal a set of links."""

    links: tuple[tuple[int, int], ...]
    heal: bool
    #: "partition" or "flap" — which stats counter the sever feeds.
    kind: str = "partition"


@dataclass
class FaultStats:
    """What the injector actually did during one run."""

    machines_crashed: int = 0
    outages: int = 0
    machines_degraded: int = 0
    blackout_ticks: int = 0
    links_degraded: int = 0
    links_severed: int = 0
    link_flaps: int = 0


class FaultInjector:
    """Executes a :class:`FaultPlan` against one simulator run.

    Lifecycle: the simulator constructs the injector with the effective
    plan and calls :meth:`attach` once, which schedules every scripted
    fault as a ``FAULT`` event through ``simulator.schedule_fault``.
    Stochastic specs (:class:`RandomMachineFailures`) schedule a
    self-rechaining sweep event per control interval, so the whole fault
    history is a deterministic function of the plan seed.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.stats = FaultStats()
        self._rng = np.random.default_rng(plan.seed)
        self._sim: "ClusterSimulator | None" = None
        #: Resolved blackout windows [start, end), filled at attach time.
        self._blackouts: list[tuple[float, float]] = []
        #: Sorted window starts + running max of window ends, so
        #: :meth:`in_blackout` answers in O(log B) instead of scanning.
        self._blackout_starts: list[float] = []
        self._blackout_max_end: list[float] = []
        #: Machine ids currently degraded (for timeline sampling).
        self._degraded_ids: set[int] = set()
        #: Fabric link state, built at attach when the plan has fabric faults.
        self.fabric: FabricState | None = None

    # ------------------------------------------------------------ lifecycle

    def attach(self, simulator: "ClusterSimulator") -> None:
        """Bind to a simulator and schedule the plan's fault events."""
        if self._sim is not None:
            raise RuntimeError("FaultInjector is already attached to a simulator")
        self._sim = simulator
        interval = simulator.config.control_interval
        if any(isinstance(f, FABRIC_FAULT_TYPES) for f in self.plan.faults):
            topology = self.plan.topology or FabricTopology.full_mesh(
                simulator.fabric_cells()
            )
            self.fabric = FabricState(topology)
            simulator.attach_fabric(self.fabric)
        for fault in self.plan.faults:
            if isinstance(fault, (CorrelatedOutage, MachineDegradation)):
                simulator.schedule_fault(fault.time, fault)
                if isinstance(fault, MachineDegradation):
                    simulator.schedule_fault(
                        fault.time + fault.duration, _DegradationEnd(fault)
                    )
            elif isinstance(fault, MonitoringBlackout):
                self._blackouts.append(
                    (fault.time, fault.time + fault.intervals * interval)
                )
            elif isinstance(fault, RandomMachineFailures):
                if fault.rate_per_machine_hour > 0:
                    # First sweep fires one interval in; it re-chains itself.
                    simulator.schedule_fault(interval, fault)
            elif isinstance(fault, FABRIC_FAULT_TYPES):
                self._attach_fabric_fault(fault)
            else:  # pragma: no cover - exhaustive over FaultSpec
                raise TypeError(f"unknown fault spec {fault!r}")
        # Windows sorted by start with a running max of ends answer the
        # per-tick in_blackout query by bisection, overlap included.
        self._blackouts.sort()
        self._blackout_starts = [start for start, _ in self._blackouts]
        running_end = float("-inf")
        for _, end in self._blackouts:
            running_end = max(running_end, end)
            self._blackout_max_end.append(running_end)

    def _attach_fabric_fault(
        self, fault: "LinkDegradation | PartialPartition | FlappingLink"
    ) -> None:
        """Validate one fabric spec against the topology and schedule it."""
        assert self._sim is not None and self.fabric is not None
        topology = self.fabric.topology
        if isinstance(fault, LinkDegradation):
            links = topology.links if fault.links is None else fault.links
            for pair in links:
                if not topology.has_link(pair):
                    raise ValueError(f"fault names unknown link {pair}")
            self._sim.schedule_fault(
                fault.time, _LinksDegrade(links, fault.stretch, start=True)
            )
            self._sim.schedule_fault(
                fault.time + fault.duration,
                _LinksDegrade(links, fault.stretch, start=False),
            )
        elif isinstance(fault, PartialPartition):
            for pair in fault.cut:
                if not topology.has_link(pair):
                    raise ValueError(f"fault names unknown link {pair}")
            self._sim.schedule_fault(
                fault.time, _LinksSever(fault.cut, heal=False, kind="partition")
            )
            self._sim.schedule_fault(
                fault.time + fault.duration,
                _LinksSever(fault.cut, heal=True, kind="partition"),
            )
        else:
            if not topology.has_link(fault.link):
                raise ValueError(f"fault names unknown link {fault.link}")
            links = (fault.link,)
            for flap in range(fault.flaps):
                down = fault.time + flap * fault.period
                self._sim.schedule_fault(
                    down, _LinksSever(links, heal=False, kind="flap")
                )
                self._sim.schedule_fault(
                    down + fault.down_seconds,
                    _LinksSever(links, heal=True, kind="flap"),
                )

    # ------------------------------------------------------------- dispatch

    def fire(self, payload: object, now: float) -> None:
        """Handle one FAULT event popped by the simulator."""
        if isinstance(payload, CorrelatedOutage):
            self._fire_outage(payload, now)
        elif isinstance(payload, MachineDegradation):
            self._fire_degradation(payload, now)
        elif isinstance(payload, _DegradationEnd):
            self._end_degradation(payload.fault, now)
        elif isinstance(payload, RandomMachineFailures):
            self._fire_poisson_sweep(payload, now)
        elif isinstance(payload, _LinksDegrade):
            self._fire_links_degrade(payload, now)
        elif isinstance(payload, _LinksSever):
            self._fire_links_sever(payload, now)
        else:  # pragma: no cover - payloads are scheduled by attach()
            raise TypeError(f"unknown fault payload {payload!r}")

    # -------------------------------------------------------------- queries

    def in_blackout(self, now: float) -> bool:
        index = bisect_right(self._blackout_starts, now)
        return index > 0 and now < self._blackout_max_end[index - 1]

    def mask_arrivals(self, now: float, arrivals: dict[int, float]) -> dict[int, float]:
        """Arrival counts as the (possibly dark) monitoring pipe reports them."""
        if self.in_blackout(now):
            self.stats.blackout_ticks += 1
            return {}
        return arrivals

    @property
    def degraded_machines(self) -> int:
        return len(self._degraded_ids)

    # ------------------------------------------------------------ internals

    def _pools(self, platform_id: int | None) -> list["MachinePool"]:
        assert self._sim is not None
        if platform_id is None:
            return list(self._sim.pools)
        pools = [p for p in self._sim.pools if p.platform_id == platform_id]
        if not pools:
            raise ValueError(f"fault names unknown platform id {platform_id}")
        return pools

    def _fire_outage(self, fault: CorrelatedOutage, now: float) -> None:
        assert self._sim is not None
        self.stats.outages += 1
        for pool in self._pools(fault.platform_id):
            count = math.ceil(fault.fraction * pool.total)
            # The failure domain is the slice carrying the work: busiest
            # powered machines first, then cold spares (ties by id, so the
            # schedule is deterministic).  A domain of idle spares would
            # make the scenario vacuous.
            victims = sorted(
                pool.machines,
                key=lambda m: (m.is_off, -len(m.running), m.machine_id),
            )[:count]
            for machine in victims:
                self._sim.crash_machine(pool, machine, now, fault.repair_seconds)
                self.stats.machines_crashed += 1

    def _fire_degradation(self, fault: MachineDegradation, now: float) -> None:
        assert self._sim is not None
        for pool in self._pools(fault.platform_id):
            count = math.ceil(fault.fraction * pool.total)
            picks = self._rng.choice(pool.total, size=min(count, pool.total), replace=False)
            for index in picks:
                machine = pool.machines[int(index)]
                self._sim.rescale_machine(machine, fault.slowdown, now)
                self._degraded_ids.add(machine.machine_id)
                self.stats.machines_degraded += 1

    def _end_degradation(self, fault: MachineDegradation, now: float) -> None:
        assert self._sim is not None
        for pool in self._pools(fault.platform_id):
            for machine in pool.machines:
                if machine.machine_id in self._degraded_ids and machine.slowdown > 1.0:
                    self._sim.rescale_machine(machine, 1.0, now)
                    self._degraded_ids.discard(machine.machine_id)

    def _fire_poisson_sweep(self, fault: RandomMachineFailures, now: float) -> None:
        """One interval's Poisson crash sampling; re-chains the next sweep."""
        assert self._sim is not None
        sim = self._sim
        for pool in sim.pools:
            powered = [m for m in pool.machines if not m.is_off]
            if not powered:
                continue
            expected = (
                fault.rate_per_machine_hour
                * len(powered)
                * sim.config.control_interval
                / 3600.0
            )
            crashes = min(int(self._rng.poisson(expected)), len(powered))
            if crashes == 0:
                continue
            victims = self._rng.choice(len(powered), size=crashes, replace=False)
            for index in victims:
                sim.crash_machine(pool, powered[int(index)], now, fault.repair_seconds)
                self.stats.machines_crashed += 1
        next_sweep = now + sim.config.control_interval
        if next_sweep < sim.horizon:
            sim.schedule_fault(next_sweep, fault)

    def _fire_links_degrade(self, payload: _LinksDegrade, now: float) -> None:
        assert self._sim is not None and self.fabric is not None
        for pair in payload.links:
            if payload.start:
                self.fabric.degrade(pair, payload.stretch)
                self.stats.links_degraded += 1
            else:
                self.fabric.restore(pair, payload.stretch)
        self._sim.on_fabric_changed(now)

    def _fire_links_sever(self, payload: _LinksSever, now: float) -> None:
        assert self._sim is not None and self.fabric is not None
        for pair in payload.links:
            if payload.heal:
                self.fabric.heal(pair)
            else:
                self.fabric.sever(pair)
                self.stats.links_severed += 1
                if payload.kind == "flap":
                    self.stats.link_flaps += 1
        self._sim.on_fabric_changed(now)
