"""Controller hardening: decision validation and a predictor circuit breaker.

:class:`GuardedController` wraps any cluster :class:`~repro.simulation.cluster.Policy`
and guarantees the decisions the cluster applies are sane even when the
model-predictive core misbehaves:

- **Validation** — a decision with NaN/infinite/negative machine targets is
  discarded and replaced by the last-known-good plan;
- **Clamping** — per-tick machine deltas are limited to a fraction of each
  pool (no fleet-wide flapping on one bad forecast), and targets never
  exceed availability;
- **Solver fallback** — if the wrapped policy raises or exceeds the solve
  time budget, the last-known-good plan is reapplied (capped by current
  availability);
- **Circuit breaker** — one-step-ahead forecast residuals are tracked
  against observed arrivals; ``trip_after`` consecutive large residuals
  trip the controller into reactive threshold provisioning (a
  :class:`~repro.provisioning.autoscaler.ThresholdAutoscaler` over current
  demand, which needs no forecasts), and ``recover_after`` consecutive
  calm intervals anneal it back to the model-predictive path.  While
  tripped, the wrapped controller keeps observing arrivals so its
  predictors re-converge before control is handed back.

This is the reactive-fallback discipline of Pace et al. (arXiv:1807.00368)
grafted onto HARMONY's Algorithm 1: trust the model when its residuals say
it is tracking reality, fall back to data-driven reactivity when they do
not (monitoring blackouts, regime changes, poisoned telemetry).
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.energy.models import MachineModel
from repro.errors import SolverError
from repro.provisioning.autoscaler import ThresholdAutoscaler, ThresholdConfig
from repro.provisioning.controller import ProvisioningDecision

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.cluster import ClusterView, Policy


@dataclass(frozen=True)
class GuardConfig:
    """Knobs for :class:`GuardedController`.

    Attributes
    ----------
    max_step_fraction:
        Per-tick machine-target delta cap, as a fraction of each pool's
        size (with a floor of ``min_step_machines`` so small pools can
        still move).
    residual_threshold:
        Relative one-step forecast error (``|observed - predicted| /
        max(observed, predicted)``) counted as a breaker strike.
    min_residual:
        Absolute error floor (tasks/interval) below which no strike is
        counted — quiet periods should not trip the breaker.
    trip_after / recover_after:
        Consecutive strikes to open the breaker; consecutive calm
        intervals to close it again.
    ewma_alpha:
        Smoothing for the fallback self-forecast of total arrivals, used
        when the wrapped policy does not expose its own forecasts.
    solve_timeout_seconds:
        Wall-clock budget for one wrapped ``decide``; exceeding it counts
        as a solver failure and reapplies the last-known-good plan.
        ``None`` disables the check.
    """

    max_step_fraction: float = 0.25
    min_step_machines: int = 4
    residual_threshold: float = 0.5
    min_residual: float = 5.0
    trip_after: int = 2
    recover_after: int = 3
    ewma_alpha: float = 0.3
    solve_timeout_seconds: float | None = None

    def __post_init__(self) -> None:
        if not 0 < self.max_step_fraction <= 1:
            raise ValueError(
                f"max_step_fraction must be in (0, 1], got {self.max_step_fraction}"
            )
        if self.min_step_machines < 1:
            raise ValueError(
                f"min_step_machines must be >= 1, got {self.min_step_machines}"
            )
        if not 0 < self.residual_threshold:
            raise ValueError(
                f"residual_threshold must be positive, got {self.residual_threshold}"
            )
        if self.min_residual < 0:
            raise ValueError(f"min_residual must be >= 0, got {self.min_residual}")
        if self.trip_after < 1:
            raise ValueError(f"trip_after must be >= 1, got {self.trip_after}")
        if self.recover_after < 1:
            raise ValueError(f"recover_after must be >= 1, got {self.recover_after}")
        if not 0 < self.ewma_alpha <= 1:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}")
        if self.solve_timeout_seconds is not None and self.solve_timeout_seconds < 0:
            raise ValueError(
                f"solve_timeout_seconds must be >= 0, got {self.solve_timeout_seconds}"
            )


@dataclass
class GuardStats:
    """What the guard had to do during one run."""

    decisions: int = 0
    invalid_decisions: int = 0
    clamped_decisions: int = 0
    solver_failures: int = 0
    fallback_decisions: int = 0
    trips: int = 0
    recoveries: int = 0
    reactive_ticks: int = 0
    #: Ticks during which a fabric partition held at least one cell's
    #: target at its last-known-good value.
    partition_held_ticks: int = 0


class GuardedController:
    """Wraps a policy; emits only validated, clamped, finite decisions."""

    def __init__(
        self,
        policy: "Policy",
        machine_models: tuple[MachineModel, ...],
        config: GuardConfig | None = None,
        fallback: ThresholdAutoscaler | None = None,
    ) -> None:
        if not machine_models:
            raise ValueError("need at least one machine model")
        self.policy = policy
        self.machine_models = machine_models
        self.config = config or GuardConfig()
        self.fallback = fallback or ThresholdAutoscaler(machine_models, ThresholdConfig())
        self.stats = GuardStats()
        self.tripped = False
        #: Structured record of every wrapped-policy failure the guard
        #: absorbed (``stage`` context: decide / observe / forecast), so
        #: fallbacks are diagnosable instead of silently swallowed.
        self.failure_log: list[SolverError] = []
        #: (time, "mpc" | "reactive") per control tick.
        self.mode_timeline: list[tuple[float, str]] = []
        #: Sanitized decisions actually handed to the cluster.
        self.decisions: list[ProvisioningDecision] = []
        self._pool_size = {m.platform_id: m.count for m in machine_models}
        self._last_good: ProvisioningDecision | None = None
        self._predicted_next: float | None = None
        self._ewma_level: float | None = None
        self._strikes = 0
        self._calm = 0

    # --------------------------------------------------------------- decide

    def decide(self, view: "ClusterView") -> ProvisioningDecision:
        observed = float(sum(view.arrivals.values()))
        self._update_breaker(observed)

        if self.tripped:
            self.stats.reactive_ticks += 1
            decision = self.fallback.decide(
                view.time,
                view.demand_cpu,
                view.demand_memory,
                powered=view.powered,
                available=view.available,
            )
            # Keep the wrapped predictors observing so forecasts re-converge
            # before the breaker closes and control is handed back.
            self._feed_inner(view)
        else:
            decision = self._guarded_inner_decide(view)

        decision = self._sanitize(decision, view)
        self.stats.decisions += 1
        self._last_good = decision
        self._refresh_prediction(observed)
        self.mode_timeline.append((view.time, "reactive" if self.tripped else "mpc"))
        self.decisions.append(decision)
        return decision

    # ------------------------------------------------------ solver fallback

    def _guarded_inner_decide(self, view: "ClusterView") -> ProvisioningDecision:
        started = _time.perf_counter()
        try:
            decision = self.policy.decide(view)
        except Exception as exc:
            # Any solver-path failure must be absorbed (that is the guard's
            # contract), but mapped onto the structured taxonomy rather
            # than silently dropped.
            self.failure_log.append(
                SolverError(
                    "wrapped policy decide() failed; reapplying "
                    "last-known-good plan",
                    stage="decide",
                    time=view.time,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
            self.stats.solver_failures += 1
            return self._last_good_decision(view)
        elapsed = _time.perf_counter() - started
        timeout = self.config.solve_timeout_seconds
        if timeout is not None and elapsed > timeout:
            self.stats.solver_failures += 1
            return self._last_good_decision(view)
        return decision

    def _last_good_decision(self, view: "ClusterView") -> ProvisioningDecision:
        """Reapply the last validated plan (hold current power if none yet)."""
        self.stats.fallback_decisions += 1
        if self._last_good is not None:
            return replace(self._last_good, time=view.time)
        return ProvisioningDecision(
            time=view.time, active=dict(view.powered), quotas=None
        )

    def _feed_inner(self, view: "ClusterView") -> None:
        """Forward observations to the wrapped policy without deciding."""
        observe = getattr(self.policy, "observe_view", None)
        if observe is not None:
            try:
                observe(view)
            except Exception as exc:
                # A failing observer must not break the reactive path, but
                # the failure is recorded, not swallowed.
                self.failure_log.append(
                    SolverError(
                        "wrapped policy observe_view() failed while tripped",
                        stage="observe",
                        time=view.time,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                )

    # ---------------------------------------------------- (de)serialization

    def to_state(self) -> dict:
        """Behavior- and summary-relevant state for serve checkpoints.

        The ``decisions`` report log is excluded (restored runs start it
        empty); everything the breaker, fallback and summary read is kept,
        including the structured failure log.
        """
        from dataclasses import asdict

        return {
            "stats": asdict(self.stats),
            "tripped": self.tripped,
            "failure_log": [
                {"message": e.message, "context": dict(e.context)}
                for e in self.failure_log
            ],
            "mode_timeline": [[t, mode] for t, mode in self.mode_timeline],
            "last_good": None
            if self._last_good is None
            else self._last_good.to_state(),
            "predicted_next": self._predicted_next,
            "ewma_level": self._ewma_level,
            "strikes": self._strikes,
            "calm": self._calm,
            "fallback": self.fallback.to_state(),
        }

    def restore_state(self, state: dict) -> None:
        self.stats = GuardStats(**state["stats"])
        self.tripped = bool(state["tripped"])
        self.failure_log = [
            SolverError(e["message"], **e["context"]) for e in state["failure_log"]
        ]
        self.mode_timeline = [(float(t), str(mode)) for t, mode in state["mode_timeline"]]
        self._last_good = (
            None
            if state["last_good"] is None
            else ProvisioningDecision.from_state(state["last_good"])
        )
        self._predicted_next = (
            None if state["predicted_next"] is None else float(state["predicted_next"])
        )
        self._ewma_level = (
            None if state["ewma_level"] is None else float(state["ewma_level"])
        )
        self._strikes = int(state["strikes"])
        self._calm = int(state["calm"])
        self.fallback.restore_state(state["fallback"])

    # ----------------------------------------------------- circuit breaker

    def _update_breaker(self, observed: float) -> None:
        predicted = self._predicted_next
        if predicted is None:
            return
        residual = abs(observed - predicted)
        scale = max(observed, predicted, 1e-9)
        strike = (
            residual > self.config.min_residual
            and residual / scale > self.config.residual_threshold
        )
        if strike:
            self._strikes += 1
            self._calm = 0
            if not self.tripped and self._strikes >= self.config.trip_after:
                self.tripped = True
                self.stats.trips += 1
        else:
            self._calm += 1
            self._strikes = 0
            if self.tripped and self._calm >= self.config.recover_after:
                self.tripped = False
                self.stats.recoveries += 1

    def _refresh_prediction(self, observed: float) -> None:
        """One-step-ahead total-arrival forecast for the next tick."""
        alpha = self.config.ewma_alpha
        if self._ewma_level is None:
            self._ewma_level = observed
        else:
            self._ewma_level = alpha * observed + (1 - alpha) * self._ewma_level
        predicted = self._inner_forecast()
        self._predicted_next = predicted if predicted is not None else self._ewma_level

    def _inner_forecast(self) -> float | None:
        """Next-interval total arrivals as the wrapped controller sees them."""
        controller = getattr(self.policy, "controller", None)
        if controller is None or not hasattr(controller, "forecast_rates"):
            return None
        try:
            rates = controller.forecast_rates()
            return float(rates[0].sum()) * float(controller.config.interval_seconds)
        except Exception as exc:
            # Fall back to the EWMA self-forecast, but leave a structured
            # trace of why the model's own forecast was unusable.
            self.failure_log.append(
                SolverError(
                    "wrapped controller forecast_rates() failed; using "
                    "EWMA self-forecast",
                    stage="forecast",
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
            return None

    # ----------------------------------------------------------- sanitizing

    def _sanitize(
        self, decision: ProvisioningDecision, view: "ClusterView"
    ) -> ProvisioningDecision:
        targets: dict[int, float] = {}
        invalid = False
        for model in self.machine_models:
            raw = decision.active.get(model.platform_id, 0)
            value = float(raw)
            if not math.isfinite(value) or value < 0:
                invalid = True
                break
            targets[model.platform_id] = value
        if invalid:
            self.stats.invalid_decisions += 1
            decision = self._last_good_decision(view)
            targets = {
                m.platform_id: float(decision.active.get(m.platform_id, 0))
                for m in self.machine_models
            }

        active: dict[int, int] = {}
        clamped = False
        for model in self.machine_models:
            pid = model.platform_id
            powered = int(view.powered.get(pid, 0))
            step = max(
                self.config.min_step_machines,
                math.ceil(self.config.max_step_fraction * self._pool_size[pid]),
            )
            bounded = min(max(int(targets[pid]), powered - step), powered + step)
            bounded = max(0, min(bounded, int(view.available.get(pid, model.count))))
            if bounded != int(targets[pid]):
                clamped = True
            active[pid] = bounded
        if clamped:
            self.stats.clamped_decisions += 1

        # Partition tolerance: a cell the fabric has cut off reports only
        # stale telemetry, so steering it on this tick's decision would be
        # steering on fiction.  Hold each unreachable cell at its
        # last-known-good target (mirroring the degradation ladder's
        # per-cell hold) until the partition heals.
        fabric = getattr(view, "fabric", None)
        if fabric is not None and fabric.unreachable:
            held_source = (
                self._last_good.active if self._last_good is not None else view.powered
            )
            for cell in fabric.unreachable:
                if cell in active:
                    active[cell] = int(held_source.get(cell, active[cell]))
            self.stats.partition_held_ticks += 1
        return replace(decision, time=view.time, active=active)
