"""Named fault scenarios shared by the CLI, benches and scenario runner.

One place defines what "outage" or "blackout" means, so ``repro
resilience``, ``repro bench robustness`` and
``benchmarks/bench_robustness_failures.py`` replay *the same* fault
matrix and their numbers stay comparable.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path

from repro.errors import ScenarioFailed
from repro.resilience.faults import (
    CorrelatedOutage,
    FaultPlan,
    MachineDegradation,
    MonitoringBlackout,
    RandomMachineFailures,
)
from repro.runner.scenario import Scenario, get_task, register_task

#: The canonical scenario matrix, in reporting order.
SCENARIOS = ("clean", "outage", "stragglers", "blackout", "poisson")


def build_scenario_plan(
    scenario: str, horizon: float, seed: int = 0
) -> FaultPlan | None:
    """The :class:`FaultPlan` for a named scenario over a given horizon.

    Returns ``None`` for the fault-free "clean" scenario.  Fault times are
    placed relative to ``horizon`` so the same scenario scales from a
    30-minute CI smoke to a multi-day evaluation trace.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    plan = FaultPlan(seed=seed)
    if scenario == "clean":
        return None
    if scenario == "outage":
        return plan.with_fault(CorrelatedOutage(time=horizon / 2, fraction=0.3))
    if scenario == "stragglers":
        return plan.with_fault(
            MachineDegradation(
                time=horizon / 3, duration=horizon / 3, fraction=0.25, slowdown=2.5
            )
        )
    if scenario == "blackout":
        return plan.with_fault(MonitoringBlackout(time=horizon / 3, intervals=3))
    if scenario == "poisson":
        return plan.with_fault(RandomMachineFailures(rate_per_machine_hour=0.05))
    raise ValueError(f"unknown scenario {scenario!r}; expected one of {SCENARIOS}")


# ------------------------------------------------------- worker-level faults
#
# The specs above inject faults into the *simulated cluster*; the pieces
# below inject faults into the *bench harness itself* — a worker process
# that raises, hangs or dies mid-scenario — which is what the scenario
# supervisor (repro.runner.supervisor) exists to survive.  Keeping them in
# the fault catalog means chaos tests, CI smokes and ad-hoc debugging all
# speak the same scenario vocabulary.

#: Worker-fault modes: raise a structured error, hang until killed by the
#: supervisor's timeout, or SIGKILL the worker outright (a crash).
WORKER_FAULT_MODES = ("raise", "hang", "kill")


@register_task("transient_fault")
def transient_fault_task(params: dict) -> dict:
    """Fail the first ``fail_attempts`` attempts, then run the inner task.

    Attempt accounting must survive the worker process dying, so it lives
    in a marker file under ``marker_dir`` keyed by ``marker_key``.  Params:

    - ``marker_dir`` / ``marker_key`` — where attempts are counted;
    - ``fail_attempts`` — attempts to sabotage before succeeding;
    - ``mode`` — one of :data:`WORKER_FAULT_MODES`;
    - ``hang_seconds`` — how long ``"hang"`` sleeps (default 3600);
    - ``inner_task`` / ``inner_params`` — the real work, whose summary is
      returned verbatim once the fault budget is exhausted (so a recovered
      run digests identically to an unsabotaged one).
    """
    marker_dir = Path(params["marker_dir"])
    key = str(params.get("marker_key", "fault"))
    fail_attempts = int(params.get("fail_attempts", 1))
    mode = str(params.get("mode", "raise"))
    if mode not in WORKER_FAULT_MODES:
        raise ValueError(f"mode must be one of {WORKER_FAULT_MODES}, got {mode!r}")

    marker = marker_dir / f"{key}.attempts"
    attempts_so_far = int(marker.read_text()) if marker.exists() else 0
    if attempts_so_far < fail_attempts:
        marker_dir.mkdir(parents=True, exist_ok=True)
        marker.write_text(str(attempts_so_far + 1))
        if mode == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if mode == "hang":
            time.sleep(float(params.get("hang_seconds", 3600.0)))
        raise ScenarioFailed(
            "injected transient worker fault",
            marker_key=key,
            attempt=attempts_so_far + 1,
            fail_attempts=fail_attempts,
        )
    inner = get_task(str(params["inner_task"]))
    return inner(dict(params.get("inner_params", {})))


def transient_fault_scenario(
    name: str,
    inner: Scenario,
    marker_dir: str | Path,
    fail_attempts: int = 1,
    mode: str = "raise",
    hang_seconds: float = 3600.0,
) -> Scenario:
    """Wrap ``inner`` so its first ``fail_attempts`` attempts fail.

    The wrapper runs the same inner task with the same params once the
    fault budget is spent, so the recovered summary — and therefore its
    digest — matches an uninterrupted run of ``inner`` exactly.
    """
    return Scenario(
        name=name,
        task="transient_fault",
        params={
            "marker_dir": str(marker_dir),
            "marker_key": name,
            "fail_attempts": int(fail_attempts),
            "mode": mode,
            "hang_seconds": float(hang_seconds),
            "inner_task": inner.task,
            "inner_params": dict(inner.params),
        },
    )
