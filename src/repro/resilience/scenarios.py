"""Named fault scenarios shared by the CLI, benches and scenario runner.

One place defines what "outage" or "blackout" means, so ``repro
resilience``, ``repro bench robustness`` and
``benchmarks/bench_robustness_failures.py`` replay *the same* fault
matrix and their numbers stay comparable.
"""

from __future__ import annotations

from repro.resilience.faults import (
    CorrelatedOutage,
    FaultPlan,
    MachineDegradation,
    MonitoringBlackout,
    RandomMachineFailures,
)

#: The canonical scenario matrix, in reporting order.
SCENARIOS = ("clean", "outage", "stragglers", "blackout", "poisson")


def build_scenario_plan(
    scenario: str, horizon: float, seed: int = 0
) -> FaultPlan | None:
    """The :class:`FaultPlan` for a named scenario over a given horizon.

    Returns ``None`` for the fault-free "clean" scenario.  Fault times are
    placed relative to ``horizon`` so the same scenario scales from a
    30-minute CI smoke to a multi-day evaluation trace.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    plan = FaultPlan(seed=seed)
    if scenario == "clean":
        return None
    if scenario == "outage":
        return plan.with_fault(CorrelatedOutage(time=horizon / 2, fraction=0.3))
    if scenario == "stragglers":
        return plan.with_fault(
            MachineDegradation(
                time=horizon / 3, duration=horizon / 3, fraction=0.25, slowdown=2.5
            )
        )
    if scenario == "blackout":
        return plan.with_fault(MonitoringBlackout(time=horizon / 3, intervals=3))
    if scenario == "poisson":
        return plan.with_fault(RandomMachineFailures(rate_per_machine_hour=0.05))
    raise ValueError(f"unknown scenario {scenario!r}; expected one of {SCENARIOS}")
