"""Named fault scenarios shared by the CLI, benches and scenario runner.

One place defines what "outage" or "blackout" means, so ``repro
resilience``, ``repro bench robustness`` and
``benchmarks/bench_robustness_failures.py`` replay *the same* fault
matrix and their numbers stay comparable.
"""

from __future__ import annotations

import csv
import os
import signal
import time
from pathlib import Path

import numpy as np

from repro.errors import ScenarioFailed
from repro.resilience.fabric import FlappingLink, LinkDegradation, PartialPartition
from repro.resilience.faults import (
    CorrelatedOutage,
    FaultPlan,
    MachineDegradation,
    MonitoringBlackout,
    RandomMachineFailures,
)
from repro.runner.scenario import Scenario, get_task, register_task

#: The canonical scenario matrix, in reporting order.  The fabric
#: scenarios (link_degradation, partial_partition, link_flapping) express
#: their link cuts in terms of the default Table II fleet's platform ids
#: (1-4, ingest cell 1); with a custom fleet, compose a
#: :class:`~repro.resilience.faults.FaultPlan` with an explicit
#: :class:`~repro.resilience.fabric.FabricTopology` instead.
SCENARIOS = (
    "clean",
    "outage",
    "stragglers",
    "blackout",
    "poisson",
    "link_degradation",
    "partial_partition",
    "link_flapping",
)


def build_scenario_plan(
    scenario: str, horizon: float, seed: int = 0
) -> FaultPlan | None:
    """The :class:`FaultPlan` for a named scenario over a given horizon.

    Returns ``None`` for the fault-free "clean" scenario.  Fault times are
    placed relative to ``horizon`` so the same scenario scales from a
    30-minute CI smoke to a multi-day evaluation trace.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    plan = FaultPlan(seed=seed)
    if scenario == "clean":
        return None
    if scenario == "outage":
        return plan.with_fault(CorrelatedOutage(time=horizon / 2, fraction=0.3))
    if scenario == "stragglers":
        return plan.with_fault(
            MachineDegradation(
                time=horizon / 3, duration=horizon / 3, fraction=0.25, slowdown=2.5
            )
        )
    if scenario == "blackout":
        return plan.with_fault(MonitoringBlackout(time=horizon / 3, intervals=3))
    if scenario == "poisson":
        return plan.with_fault(RandomMachineFailures(rate_per_machine_hour=0.05))
    if scenario == "link_degradation":
        # Fabric-wide brownout: every link carries halved throughput for a
        # third of the run — cross-cell work stretches, nothing partitions.
        return plan.with_fault(
            LinkDegradation(
                time=horizon / 4,
                duration=horizon / 3,
                links=None,
                throughput_factor=0.5,
                latency_factor=1.5,
            )
        )
    if scenario == "partial_partition":
        # Cut every link into cell 4 (the largest machines): the cell is
        # unreachable from ingest for a quarter of the run, then heals.
        return plan.with_fault(
            PartialPartition(
                time=horizon / 3,
                duration=horizon / 4,
                cut=((1, 4), (2, 4), (3, 4)),
            )
        )
    if scenario == "link_flapping":
        # One inter-cell link oscillating down/up; the mesh keeps every
        # cell reachable, so this stresses hysteresis, not placement.
        return plan.with_fault(
            FlappingLink(
                time=horizon / 4, link=(1, 2), flaps=3, period=max(horizon / 12, 2.0)
            )
        )
    raise ValueError(f"unknown scenario {scenario!r}; expected one of {SCENARIOS}")


# ------------------------------------------------------- worker-level faults
#
# The specs above inject faults into the *simulated cluster*; the pieces
# below inject faults into the *bench harness itself* — a worker process
# that raises, hangs or dies mid-scenario — which is what the scenario
# supervisor (repro.runner.supervisor) exists to survive.  Keeping them in
# the fault catalog means chaos tests, CI smokes and ad-hoc debugging all
# speak the same scenario vocabulary.

#: Worker-fault modes: raise a structured error, hang until killed by the
#: supervisor's timeout, or SIGKILL the worker outright (a crash).
WORKER_FAULT_MODES = ("raise", "hang", "kill")


@register_task("transient_fault")
def transient_fault_task(params: dict) -> dict:
    """Fail the first ``fail_attempts`` attempts, then run the inner task.

    Attempt accounting must survive the worker process dying, so it lives
    in a marker file under ``marker_dir`` keyed by ``marker_key``.  Params:

    - ``marker_dir`` / ``marker_key`` — where attempts are counted;
    - ``fail_attempts`` — attempts to sabotage before succeeding;
    - ``mode`` — one of :data:`WORKER_FAULT_MODES`;
    - ``hang_seconds`` — how long ``"hang"`` sleeps (default 3600);
    - ``inner_task`` / ``inner_params`` — the real work, whose summary is
      returned verbatim once the fault budget is exhausted (so a recovered
      run digests identically to an unsabotaged one).
    """
    marker_dir = Path(params["marker_dir"])
    key = str(params.get("marker_key", "fault"))
    fail_attempts = int(params.get("fail_attempts", 1))
    mode = str(params.get("mode", "raise"))
    if mode not in WORKER_FAULT_MODES:
        raise ValueError(f"mode must be one of {WORKER_FAULT_MODES}, got {mode!r}")

    marker = marker_dir / f"{key}.attempts"
    attempts_so_far = int(marker.read_text()) if marker.exists() else 0
    if attempts_so_far < fail_attempts:
        marker_dir.mkdir(parents=True, exist_ok=True)
        marker.write_text(str(attempts_so_far + 1))
        if mode == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if mode == "hang":
            time.sleep(float(params.get("hang_seconds", 3600.0)))
        raise ScenarioFailed(
            "injected transient worker fault",
            marker_key=key,
            attempt=attempts_so_far + 1,
            fail_attempts=fail_attempts,
        )
    inner = get_task(str(params["inner_task"]))
    return inner(dict(params.get("inner_params", {})))


# ------------------------------------------------------- data-plane faults
#
# The worker faults above attack the bench harness; the pieces below attack
# the *input data* — field-level corruption of a saved task CSV, replayed
# through the sanitizer (repro.trace.sanitize) and the analytics fallback
# chain.  Same vocabulary rule as the rest of the catalog: one definition
# of "10% dirty" shared by the CLI, CI smoke and the trace_corruption
# bench suite.

#: Field-level corruption kinds, cycled deterministically over the sampled
#: rows.  Together they hit both sanitizer paths: repairs (negative
#: duration, duplicate id) and quarantines (unparseable cell, NaN
#: resource, out-of-range priority, negative timestamp, truncated row).
CORRUPTION_KINDS = (
    "unparseable_cell",
    "nan_resource",
    "negative_duration",
    "priority_out_of_range",
    "negative_timestamp",
    "duplicate_id",
    "truncated_row",
)


def corrupt_tasks_csv(
    path: str | Path, fraction: float = 0.1, seed: int = 0
) -> int:
    """Corrupt a saved task CSV in place, deterministically.

    Samples ``max(1, round(fraction * rows))`` distinct rows with a
    generator seeded by ``seed`` and cycles :data:`CORRUPTION_KINDS` over
    them in file order, so the same ``(file, fraction, seed)`` triple
    always produces the same dirty bytes — a corruption run is as
    replayable as any other fault scenario.  Returns the number of rows
    corrupted.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        rows = [list(row) for row in reader]
    if not rows:
        return 0

    column = {name: i for i, name in enumerate(header)}
    count = min(max(1, round(fraction * len(rows))), len(rows))
    rng = np.random.default_rng(seed)
    victims = sorted(int(i) for i in rng.choice(len(rows), size=count, replace=False))
    for n, index in enumerate(victims):
        kind = CORRUPTION_KINDS[n % len(CORRUPTION_KINDS)]
        row = rows[index]
        if kind == "unparseable_cell":
            row[column["cpu_request"]] = "not-a-number"
        elif kind == "nan_resource":
            row[column["memory_request"]] = "nan"
        elif kind == "negative_duration":
            row[column["duration"]] = "-42.0"
        elif kind == "priority_out_of_range":
            row[column["priority"]] = "99"
        elif kind == "negative_timestamp":
            row[column["timestamp"]] = "-1.0"
        elif kind == "duplicate_id":
            donor = rows[index - 1] if index else rows[-1]
            if len(donor) > column["task_index"]:
                row[column["job_id"]] = donor[column["job_id"]]
                row[column["task_index"]] = donor[column["task_index"]]
        elif kind == "truncated_row":
            del row[3:]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    return len(victims)


@register_task("sanitized_simulate")
def sanitized_simulate_task(params: dict) -> dict:
    """Dirty-trace end to end: generate, corrupt, sanitize, simulate.

    Saves the synthetic trace to a temp directory, corrupts its task CSV
    in place with :func:`corrupt_tasks_csv`, ingests it back through
    :func:`repro.trace.sanitize.sanitize_trace`, refits the classifier on
    the surviving tasks and runs :class:`HarmonySimulation` with the
    sanitization report attached — so ``summary()["resilience"]
    ["data_plane"]`` carries the repair/quarantine counts.  Params:

    - ``trace`` — dict for :func:`trace_config_from_params`;
    - ``corrupt_fraction`` / ``corrupt_seed`` — corruption knobs;
    - ``policy`` / ``predictor`` / ``guard`` — simulation knobs
      (defaults ``cbs`` / ``fallback`` / ``True``);
    - ``window_hours`` — clip the trace before saving.

    The temp directory never leaks into the summary (the report's
    ``quarantine_path`` is excluded from its digest payload), so two runs
    of the same params digest identically.
    """
    import tempfile

    from repro.classification import ClassifierConfig, TaskClassifier
    from repro.runner.defaults import trace_config_from_params
    from repro.simulation import HarmonyConfig, HarmonySimulation
    from repro.trace import generate_trace, sanitize_trace, save_trace

    config = trace_config_from_params(dict(params.get("trace", {})))
    trace = generate_trace(config)
    window_hours = params.get("window_hours")
    if window_hours is not None:
        trace = trace.window(0.0, min(float(window_hours) * 3600.0, trace.horizon))

    start = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="repro-dirty-") as tmp:
        save_trace(trace, tmp)
        corrupted = corrupt_tasks_csv(
            Path(tmp) / "task_events.csv",
            fraction=float(params.get("corrupt_fraction", 0.1)),
            seed=int(params.get("corrupt_seed", 0)),
        )
        sanitized, report = sanitize_trace(tmp)
    sanitize_seconds = time.perf_counter() - start

    classifier = TaskClassifier(ClassifierConfig(seed=config.seed)).fit(
        list(sanitized.tasks)
    )
    sim_config = HarmonyConfig(
        policy=str(params.get("policy", "cbs")),
        predictor=str(params.get("predictor", "fallback")),
        engine=str(params.get("engine", "object")),
        guard=bool(params.get("guard", True)),
    )
    result = HarmonySimulation(
        sim_config, sanitized, classifier=classifier, sanitization=report
    ).run()
    summary = result.summary()
    summary["corrupted_rows"] = corrupted
    phases = dict(result.phase_timings)
    phases["sanitize"] = sanitize_seconds
    return {"summary": summary, "phases": phases}


def transient_fault_scenario(
    name: str,
    inner: Scenario,
    marker_dir: str | Path,
    fail_attempts: int = 1,
    mode: str = "raise",
    hang_seconds: float = 3600.0,
) -> Scenario:
    """Wrap ``inner`` so its first ``fail_attempts`` attempts fail.

    The wrapper runs the same inner task with the same params once the
    fault budget is spent, so the recovered summary — and therefore its
    digest — matches an uninterrupted run of ``inner`` exactly.
    """
    return Scenario(
        name=name,
        task="transient_fault",
        params={
            "marker_dir": str(marker_dir),
            "marker_key": name,
            "fail_attempts": int(fail_attempts),
            "mode": mode,
            "hang_seconds": float(hang_seconds),
            "inner_task": inner.task,
            "inner_params": dict(inner.params),
        },
    )
