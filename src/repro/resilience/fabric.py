"""Deterministic fabric topology: machine-type cells and the links between.

The simulator's fleet is a set of machine-type *cells* (one per platform
id) joined by *links* with capacity/latency state — the network the paper's
12k-machine deployment target actually lives on.  This module supplies the
three pieces the fabric fault universe needs:

- :class:`FabricTopology` — the static graph (cells, links, and the
  trace-ingest cell every placement must be reachable from);
- :class:`FabricState` — the mutable runtime overlay (per-link cut counts
  and degradation stretches) with the two derived queries everything else
  consumes: which cells are reachable from ingest, and the multiplicative
  service-time stretch of the best surviving path to each cell;
- the fabric fault specs (:class:`LinkDegradation`,
  :class:`PartialPartition`, :class:`FlappingLink`) that
  :class:`~repro.resilience.faults.FaultPlan` composes and the
  :class:`~repro.resilience.faults.FaultInjector` fires through the
  simulator's ``FAULT`` event path.

Like :mod:`repro.resilience.faults`, this module imports nothing from
:mod:`repro.simulation`: the layering keeps pointing downward, and the
graph math stays unit-testable without a simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def link_key(a: int, b: int) -> tuple[int, int]:
    """The canonical (smaller id, larger id) form of an undirected link."""
    if a == b:
        raise ValueError(f"a link needs two distinct cells, got {a}-{b}")
    return (a, b) if a < b else (b, a)


def link_label(pair: tuple[int, int]) -> str:
    """Stable string key for metrics dicts, e.g. ``"1-4"``."""
    return f"{pair[0]}-{pair[1]}"


@dataclass(frozen=True)
class FabricTopology:
    """The static cell/link graph, anchored at the trace-ingest cell.

    Cells are platform ids (one cell per machine pool); links are
    undirected cell pairs in canonical :func:`link_key` order.  The ingest
    cell is where arriving work enters the fabric — reachability and path
    stretch are always computed from it.
    """

    cells: tuple[int, ...]
    links: tuple[tuple[int, int], ...]
    ingest_cell: int

    def __post_init__(self) -> None:
        cells = tuple(sorted(set(self.cells)))
        if not cells:
            raise ValueError("a fabric needs at least one cell")
        object.__setattr__(self, "cells", cells)
        cell_set = set(cells)
        normalized = []
        seen: set[tuple[int, int]] = set()
        for a, b in self.links:
            pair = link_key(a, b)
            if pair[0] not in cell_set or pair[1] not in cell_set:
                raise ValueError(f"link {link_label(pair)} references unknown cells")
            if pair not in seen:
                seen.add(pair)
                normalized.append(pair)
        object.__setattr__(self, "links", tuple(sorted(normalized)))
        if self.ingest_cell not in cell_set:
            raise ValueError(
                f"ingest cell {self.ingest_cell} is not one of the cells {cells}"
            )

    @classmethod
    def full_mesh(
        cls, cells: tuple[int, ...] | list[int], ingest_cell: int | None = None
    ) -> "FabricTopology":
        """Every cell pair linked; ingest defaults to the smallest cell id."""
        ordered = tuple(sorted(set(cells)))
        links = tuple(
            (a, b) for i, a in enumerate(ordered) for b in ordered[i + 1:]
        )
        ingest = ordered[0] if ingest_cell is None else ingest_cell
        return cls(cells=ordered, links=links, ingest_cell=ingest)

    def has_link(self, pair: tuple[int, int]) -> bool:
        return link_key(*pair) in set(self.links)


# ----------------------------------------------------------- fabric faults
#
# These specs join the FaultSpec union in repro.resilience.faults; the
# injector resolves and schedules them at attach time and mutates a
# FabricState when they fire.


@dataclass(frozen=True)
class LinkDegradation:
    """Correlated link degradation over a window.

    From ``time`` for ``duration`` seconds the named ``links`` (``None`` =
    every link in the topology — a fabric-wide brownout) carry a throughput
    multiplier and a latency multiplier.  Tasks whose best surviving path
    from the ingest cell crosses a degraded link have their remaining
    service time stretched by the path's compounded
    ``max(latency_factor, 1 / throughput_factor)`` — the same mechanism as
    straggler machines, applied per cell instead of per machine.
    """

    time: float
    duration: float
    #: Canonical link pairs to hit; ``None`` degrades every topology link.
    #: An explicit empty tuple is a valid no-op (used by differential
    #: tests to prove the fabric plumbing itself changes nothing).
    links: tuple[tuple[int, int], ...] | None = None
    throughput_factor: float = 0.5
    latency_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"time must be >= 0, got {self.time}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if not 0 < self.throughput_factor <= 1:
            raise ValueError(
                f"throughput_factor must be in (0, 1], got {self.throughput_factor}"
            )
        if self.latency_factor < 1:
            raise ValueError(
                f"latency_factor must be >= 1, got {self.latency_factor}"
            )
        if self.links is not None:
            object.__setattr__(
                self, "links", tuple(link_key(a, b) for a, b in self.links)
            )

    @property
    def stretch(self) -> float:
        """Service-time multiplier a crossing of one degraded link costs."""
        return max(self.latency_factor, 1.0 / self.throughput_factor)


@dataclass(frozen=True)
class PartialPartition:
    """A cut severing a subset of cell pairs for a window.

    The listed links go down at ``time`` and heal ``duration`` seconds
    later.  Cells left with no surviving path from the ingest cell are
    *unreachable*: the scheduler stops placing work there, the control
    plane sees their telemetry frozen at last-known values, and the
    degradation ladder holds their targets until the cut heals.
    """

    time: float
    duration: float
    #: Canonical link pairs severed by the cut (may be empty: a no-op).
    cut: tuple[tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"time must be >= 0, got {self.time}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        object.__setattr__(self, "cut", tuple(link_key(a, b) for a, b in self.cut))


@dataclass(frozen=True)
class FlappingLink:
    """One link oscillating down/up ``flaps`` times.

    Each flap holds the link down for the first half of ``period`` and up
    for the second half, starting at ``time`` — the pathological failure
    mode for naive hysteresis, kept strictly deterministic here.
    """

    time: float
    link: tuple[int, int]
    flaps: int = 3
    period: float = 600.0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"time must be >= 0, got {self.time}")
        if self.flaps < 1:
            raise ValueError(f"flaps must be >= 1, got {self.flaps}")
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        object.__setattr__(self, "link", link_key(*self.link))

    @property
    def down_seconds(self) -> float:
        """How long the link stays down within each flap."""
        return self.period / 2.0


#: Specs handled by the fabric layer (vs. machine-level fault specs).
FABRIC_FAULT_TYPES = (LinkDegradation, PartialPartition, FlappingLink)


# ------------------------------------------------------------ runtime state


@dataclass
class _LinkState:
    """Mutable overlay for one link: cut count + active stretches."""

    cuts: int = 0
    #: Multiplicative stretch factors of active degradations (overlapping
    #: windows compound).
    stretches: list[float] = field(default_factory=list)


class FabricState:
    """Runtime link state over a :class:`FabricTopology`.

    The fault injector mutates it (sever/heal, degrade/restore); the
    simulator reads the two derived views — :meth:`cell_stretch` (which is
    also the reachability map: unreachable cells are absent) and
    :meth:`degraded_links` — after every change.
    """

    def __init__(self, topology: FabricTopology) -> None:
        self.topology = topology
        self._links: dict[tuple[int, int], _LinkState] = {
            pair: _LinkState() for pair in topology.links
        }

    def _state(self, pair: tuple[int, int]) -> _LinkState:
        state = self._links.get(link_key(*pair))
        if state is None:
            raise ValueError(
                f"link {link_label(link_key(*pair))} is not in the topology"
            )
        return state

    # ----------------------------------------------------------- mutations

    def sever(self, pair: tuple[int, int]) -> None:
        """Take a link down (cuts stack: overlapping faults both count)."""
        self._state(pair).cuts += 1

    def heal(self, pair: tuple[int, int]) -> None:
        """Undo one sever of a link."""
        state = self._state(pair)
        if state.cuts <= 0:
            raise ValueError(
                f"heal without matching sever for link {link_label(link_key(*pair))}"
            )
        state.cuts -= 1

    def degrade(self, pair: tuple[int, int], stretch: float) -> None:
        """Apply one degradation window's stretch factor to a link."""
        if stretch < 1:
            raise ValueError(f"stretch must be >= 1, got {stretch}")
        self._state(pair).stretches.append(stretch)

    def restore(self, pair: tuple[int, int], stretch: float) -> None:
        """Remove one previously applied stretch factor from a link."""
        state = self._state(pair)
        if stretch not in state.stretches:
            raise ValueError(
                f"restore without matching degrade for link "
                f"{link_label(link_key(*pair))}"
            )
        state.stretches.remove(stretch)

    # ------------------------------------------------------------- queries

    def link_severed(self, pair: tuple[int, int]) -> bool:
        return self._state(pair).cuts > 0

    def link_stretch(self, pair: tuple[int, int]) -> float:
        """Compounded stretch of a link's active degradations (1.0 clean)."""
        stretch = 1.0
        for factor in self._state(pair).stretches:
            stretch *= factor
        return stretch

    def degraded_links(self) -> tuple[tuple[int, int], ...]:
        """Links currently severed or stretched, in canonical order."""
        return tuple(
            pair
            for pair in self.topology.links
            if self._links[pair].cuts > 0 or self.link_stretch(pair) > 1.0
        )

    def cell_stretch(self) -> dict[int, float]:
        """Best-path service-time stretch per *reachable* cell.

        Dijkstra from the ingest cell minimizing the product of link
        stretches (all factors are >= 1, so the product is monotone and the
        greedy expansion is exact).  Severed links carry no paths.  Cells
        with no surviving path are absent from the result — absence *is*
        the unreachability signal.  Ties expand the smallest cell id first,
        so the map is deterministic.
        """
        adjacency: dict[int, list[tuple[int, tuple[int, int]]]] = {
            cell: [] for cell in self.topology.cells
        }
        for pair in self.topology.links:
            if self._links[pair].cuts > 0:
                continue
            a, b = pair
            adjacency[a].append((b, pair))
            adjacency[b].append((a, pair))
        best: dict[int, float] = {self.topology.ingest_cell: 1.0}
        visited: set[int] = set()
        while True:
            frontier = [
                (stretch, cell)
                for cell, stretch in best.items()
                if cell not in visited
            ]
            if not frontier:
                return best
            _, cell = min(frontier)
            visited.add(cell)
            for neighbor, pair in adjacency[cell]:
                if neighbor in visited:
                    continue
                via = best[cell] * self.link_stretch(pair)
                if via < best.get(neighbor, float("inf")):
                    best[neighbor] = via

    def reachable_cells(self) -> frozenset[int]:
        """Cells with at least one surviving path from the ingest cell."""
        return frozenset(self.cell_stretch())

    def unreachable_cells(self) -> tuple[int, ...]:
        """Cells cut off from the ingest cell, sorted."""
        reachable = self.reachable_cells()
        return tuple(c for c in self.topology.cells if c not in reachable)

    @property
    def partitioned(self) -> bool:
        return bool(self.unreachable_cells())


@dataclass(frozen=True)
class FabricView:
    """Per-tick fabric snapshot on :class:`~repro.simulation.cluster.ClusterView`.

    ``last_heard`` carries per-cell staleness stamps: the last control tick
    at which each cell's telemetry was fresh.  For unreachable cells the
    stamp stops advancing while the view's per-cell fields
    (``available`` / ``powered`` / ``running_by_platform``) stay frozen at
    their last-known values — a scoped blackout the control plane must
    detect and tolerate rather than trust.
    """

    #: Cells currently unreachable from the ingest cell, sorted.
    unreachable: tuple[int, ...]
    #: Cell id -> time of its last fresh telemetry report.
    last_heard: dict[int, float]
    #: Labels of links currently severed or degraded, canonical order.
    degraded_links: tuple[str, ...]
    #: Whether any cell is unreachable (``bool(unreachable)``).
    partitioned: bool
