"""Resilience: fault injection, controller hardening, degraded-mode control.

The paper's Fig. 8 architecture claims the monitoring module "reports any
failures and anomalies" and that the management loop absorbs them; this
package supplies both sides of that claim for the reproduction:

- :mod:`repro.resilience.faults` -- a composable :class:`FaultPlan` /
  :class:`FaultInjector` API driving correlated domain outages, straggler
  degradation, monitoring blackouts and Poisson machine crashes through
  the simulator's event queue;
- :mod:`repro.resilience.fabric` -- the deterministic fabric topology
  model (machine-type cells joined by links) behind the network fault
  kinds: correlated link degradation, partial partitions and flapping
  links, plus the :class:`FabricView` staleness block that makes the
  control plane partition-tolerant;
- :mod:`repro.resilience.guard` -- :class:`GuardedController`, a policy
  wrapper that validates and clamps every decision, falls back to the
  last-known-good plan on solver failure, and trips a forecast-residual
  circuit breaker into reactive threshold provisioning;
- :mod:`repro.resilience.scenarios` -- the named fault matrix, plus
  data-plane faults: deterministic field-level trace corruption
  (:func:`corrupt_tasks_csv`) replayed through the sanitizer
  (:mod:`repro.trace.sanitize`) by the ``sanitized_simulate`` task.

See ``docs/resilience.md`` for the fault model and guardrail thresholds.
"""

from repro.resilience.fabric import (
    FABRIC_FAULT_TYPES,
    FabricState,
    FabricTopology,
    FabricView,
    FlappingLink,
    LinkDegradation,
    PartialPartition,
    link_key,
    link_label,
)
from repro.resilience.faults import (
    CorrelatedOutage,
    FaultInjector,
    FaultPlan,
    FaultStats,
    MachineDegradation,
    MonitoringBlackout,
    RandomMachineFailures,
)
from repro.resilience.guard import GuardConfig, GuardedController, GuardStats
from repro.resilience.scenarios import (
    CORRUPTION_KINDS,
    SCENARIOS,
    WORKER_FAULT_MODES,
    build_scenario_plan,
    corrupt_tasks_csv,
    transient_fault_scenario,
)

__all__ = [
    "CORRUPTION_KINDS",
    "SCENARIOS",
    "WORKER_FAULT_MODES",
    "build_scenario_plan",
    "corrupt_tasks_csv",
    "transient_fault_scenario",
    "CorrelatedOutage",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "MachineDegradation",
    "MonitoringBlackout",
    "RandomMachineFailures",
    "FABRIC_FAULT_TYPES",
    "FabricState",
    "FabricTopology",
    "FabricView",
    "FlappingLink",
    "LinkDegradation",
    "PartialPartition",
    "link_key",
    "link_label",
    "GuardConfig",
    "GuardedController",
    "GuardStats",
]
