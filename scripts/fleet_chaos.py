#!/usr/bin/env python3
"""Fleet chaos drill: kill a shard worker, then the coordinator; resume.

Three phases, all asserting the fleet's digest-invariance contract — a
sharded run that was sabotaged and recovered must merge to exactly the
bytes of a run that was never interrupted, with an empty quarantine:

1. **Reference** (in-process): one uninterrupted serial ``run_fleet`` —
   the merged fleet digest everything else must reproduce.
2. **Shard-worker kill** (in-process): one shard's worker SIGKILLs
   itself on its first attempt; :class:`ScenarioSupervisor` respawns it
   and the re-merged fleet digest must match the reference.
3. **Coordinator kill + resume** (subprocess): a supervised
   ``repro fleet`` run is SIGKILLed — process group and all, shard
   workers included — once its suite journal shows partial progress;
   ``repro fleet --resume`` then finishes the fleet and the final
   ``BENCH_google_fleet.json`` must carry the reference digest with
   ``partial: false`` and no missing shards.

Exit code 0 on success, 1 on any divergence.  Environment knobs
(``REPRO_BENCH_FLEET_*``) pass through, so CI can shrink the fleet::

    PYTHONPATH=src python scripts/fleet_chaos.py [--shards 3] [--workers 2]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.fleet import (  # noqa: E402
    FleetConfig,
    fleet_scenarios,
    merge_fleet_report,
    run_fleet,
)
from repro.resilience import transient_fault_scenario  # noqa: E402
from repro.runner import (  # noqa: E402
    ScenarioSupervisor,
    SupervisorConfig,
    google_fleet_trace_params,
)

SUITE = "google_fleet"


def log(message: str) -> None:
    print(f"[fleet-chaos] {message}", flush=True)


# ------------------------------------------------------ phase 2: shard kill


def phase_shard_kill(tmp: Path, shards: int, workers: int, reference: str) -> bool:
    """SIGKILL one shard worker on attempt 1; the re-merge must digest equal."""
    scenarios = list(
        fleet_scenarios(google_fleet_trace_params(), FleetConfig(shards=shards))
    )
    victim = scenarios[shards // 2]
    # Keep the victim's name: the fleet digest is keyed per shard name.
    scenarios[shards // 2] = transient_fault_scenario(
        victim.name, victim, tmp / "markers", fail_attempts=1, mode="kill"
    )
    config = SupervisorConfig(backoff_base_seconds=0.01, backoff_cap_seconds=0.05)
    report = ScenarioSupervisor(SUITE, config).run(scenarios, workers=workers)

    if report.quarantined:
        log(f"FAIL: shard-kill run quarantined: {report.quarantined}")
        return False
    if report[victim.name].attempts != 2:
        log(f"FAIL: expected 2 attempts (kill + respawn), "
            f"got {report[victim.name].attempts}")
        return False
    fleet = merge_fleet_report(SUITE, shards, report)
    if fleet.partial or fleet.digest != reference:
        log(f"FAIL: re-merged digest diverged: {fleet.digest} != {reference}")
        return False
    log(f"shard kill: {victim.name} respawned once, fleet digest matches "
        f"({reference[:12]}...)")
    return True


# ----------------------------------------- phase 3: coordinator kill + resume


def fleet_command(shards: int, workers: int, output: Path, resume: bool) -> list[str]:
    command = [
        sys.executable, "-m", "repro", "fleet",
        "--shards", str(shards), "--workers", str(workers),
        "--supervise", "--output", str(output),
    ]
    if resume:
        command.append("--resume")
    return command


def fleet_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def complete_journal_lines(directory: Path) -> int:
    """Shard entries durably in the suite journal (ignores header + torn tail)."""
    candidates = sorted(directory.glob(f"JOURNAL_{SUITE}*.jsonl"))
    if not candidates:
        return 0
    raw = candidates[0].read_text(encoding="utf-8", errors="replace")
    return sum(
        1
        for line in raw.split("\n")[:-1]
        if line.strip() and '"kind":"header"' not in line
    )


def phase_coordinator_kill_resume(
    tmp: Path,
    shards: int,
    workers: int,
    kill_after: int,
    timeout: float,
    reference: str,
) -> bool:
    """SIGKILL the whole fleet mid-run; --resume must reproduce the reference."""
    chaos_dir = tmp / "chaos"
    log(f"chaos run: will SIGKILL the fleet after {kill_after} journaled shard(s)")
    process = subprocess.Popen(
        fleet_command(shards, workers, chaos_dir, resume=False),
        env=fleet_env(), stdout=subprocess.DEVNULL,
        start_new_session=True,  # so the kill takes shard workers down too
    )
    deadline = time.monotonic() + timeout
    try:
        while complete_journal_lines(chaos_dir) < kill_after:
            if process.poll() is not None:
                log("FAIL: chaos run finished before it could be killed; "
                    "lower --kill-after or enlarge the fleet")
                return False
            if time.monotonic() > deadline:
                log("FAIL: timed out waiting for journal progress")
                return False
            time.sleep(0.05)
        os.killpg(process.pid, signal.SIGKILL)
    finally:
        process.wait()
    journaled = complete_journal_lines(chaos_dir)
    log(f"killed coordinator+workers with {journaled}/{shards} shards journaled")
    if (chaos_dir / f"BENCH_{SUITE}.json").exists():
        log("FAIL: killed run should not have written its BENCH file yet")
        return False

    log("resume run: repro fleet --resume")
    subprocess.run(
        fleet_command(shards, workers, chaos_dir, resume=True),
        env=fleet_env(), check=True, stdout=subprocess.DEVNULL,
    )
    payload = json.loads((chaos_dir / f"BENCH_{SUITE}.json").read_text())
    fleet = payload["fleet"]
    if fleet["partial"] or fleet["missing"]:
        log(f"FAIL: resumed fleet is a partial merge: missing {fleet['missing']}")
        return False
    if fleet["digest"] != reference:
        log(f"FAIL: resumed fleet digest diverged: "
            f"{fleet['digest']} != {reference}")
        return False
    log(f"resume: fleet digest matches the uninterrupted reference, "
        f"quarantine empty ({reference[:12]}...)")
    return True


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--kill-after", type=int, default=1,
        help="journaled shards to wait for before the SIGKILL (default 1)",
    )
    parser.add_argument(
        "--timeout", type=float, default=600.0,
        help="budget for the chaos phase in seconds (default 600)",
    )
    args = parser.parse_args()

    log(f"reference run: {args.shards} shard(s), serial, in-process")
    reference = run_fleet(
        google_fleet_trace_params(), FleetConfig(shards=args.shards), workers=1
    )
    if reference.partial or reference.digest is None:
        log("FAIL: reference run did not merge cleanly")
        return 1
    log(f"reference fleet digest {reference.digest[:12]}...")

    with tempfile.TemporaryDirectory(prefix="fleet-chaos-") as tmpdir:
        tmp = Path(tmpdir)
        ok = phase_shard_kill(tmp, args.shards, args.workers, reference.digest)
        ok = phase_coordinator_kill_resume(
            tmp, args.shards, args.workers, args.kill_after, args.timeout,
            reference.digest,
        ) and ok
    log("PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
