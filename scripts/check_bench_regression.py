#!/usr/bin/env python3
"""Compare a fresh BENCH_<suite>.json against the committed baseline.

CI's perf + memory gate: after regenerating a suite, this script fails
the build when

- a scenario's share of the suite's total wall time regressed by more
  than ``--max-regression`` (default 25%) relative to the committed
  baseline — shares, not absolute seconds, so the gate is stable across
  runner hardware;
- a scenario's share of the suite's summed peak RSS regressed the same
  way (same limit, same rationale) — scenarios without RSS data on
  either side are skipped, so pre-RSS baselines stay comparable;
- the run's ``peak_rss_mb`` high-water mark grew past the baseline's by
  more than ``--max-regression``, or exceeds the absolute
  ``--rss-ceiling-mb`` (when given) — the committed memory envelope of
  the Google-trace-scale fleet bench;
- the paired replay scenarios (``replay_object`` / ``replay_columnar``)
  disagree on their summary digest — the columnar determinism contract,
  checked on every gate run;
- the intra-run columnar speedup ``wall(replay_object) /
  wall(replay_columnar)`` fell below ``--min-speedup`` (when given) —
  the point of the columnar engine, measured within one run so hardware
  cancels out;
- a baseline scenario disappeared from the fresh run.

It always prints the measured speedup so CI logs double as a perf
history.  Pure comparison logic lives in :func:`compare_reports` for the
unit tests (``tests/test_bench_regression.py``).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Scenarios cheaper than this (seconds, in both runs) are exempt from the
#: share check: their timings are dominated by constant overheads and one
#: scheduler hiccup would flap the gate.
MIN_GATED_WALL_S = 0.5

#: Scenarios (and run peaks) below this resident size are exempt from the
#: RSS checks: a spawn worker that merely imports the simulator sits at
#: ~110-120 MiB (interpreter + numpy/scipy), so readings down there are
#: all import baseline — which moves with toolchain versions, not with
#: our code — and their shares are meaninglessly uniform.
MIN_GATED_RSS_MB = 192.0

REPLAY_OBJECT = "replay_object"
REPLAY_COLUMNAR = "replay_columnar"


def _scenario_walls(report: dict) -> dict[str, float]:
    return {s["name"]: float(s["wall_s"]) for s in report.get("scenarios", [])}


def _scenario_rss(report: dict) -> dict[str, float]:
    return {
        s["name"]: float(s["rss_peak_mb"])
        for s in report.get("scenarios", [])
        if s.get("rss_peak_mb") is not None
    }


def _scenario_digests(report: dict) -> dict[str, str]:
    return {s["name"]: s.get("summary_digest", "") for s in report.get("scenarios", [])}


def measured_speedup(report: dict) -> float | None:
    """Columnar speedup within one report, or None if the pair is absent."""
    walls = _scenario_walls(report)
    obj = walls.get(REPLAY_OBJECT)
    col = walls.get(REPLAY_COLUMNAR)
    if obj is None or col is None or col <= 0:
        return None
    return obj / col


def compare_reports(
    baseline: dict,
    fresh: dict,
    max_regression: float = 0.25,
    min_speedup: float | None = None,
    rss_ceiling_mb: float | None = None,
) -> list[str]:
    """All gate violations of ``fresh`` against ``baseline`` (empty = pass)."""
    problems: list[str] = []
    base_walls = _scenario_walls(baseline)
    fresh_walls = _scenario_walls(fresh)

    missing = sorted(set(base_walls) - set(fresh_walls))
    if missing:
        problems.append(f"scenarios missing from fresh run: {', '.join(missing)}")

    common = sorted(set(base_walls) & set(fresh_walls))
    base_total = sum(base_walls[name] for name in common)
    fresh_total = sum(fresh_walls[name] for name in common)
    if base_total > 0 and fresh_total > 0:
        for name in common:
            if base_walls[name] < MIN_GATED_WALL_S or fresh_walls[name] < MIN_GATED_WALL_S:
                continue
            base_share = base_walls[name] / base_total
            fresh_share = fresh_walls[name] / fresh_total
            if fresh_share > base_share * (1.0 + max_regression):
                problems.append(
                    f"{name}: wall-time share regressed "
                    f"{base_share:.1%} -> {fresh_share:.1%} "
                    f"(limit +{max_regression:.0%})"
                )

    # Peak-RSS share gate — the memory mirror of the wall-share gate.
    # Skips silently when either side predates RSS recording.
    base_rss = _scenario_rss(baseline)
    fresh_rss = _scenario_rss(fresh)
    rss_common = sorted(set(base_rss) & set(fresh_rss))
    base_rss_total = sum(base_rss[name] for name in rss_common)
    fresh_rss_total = sum(fresh_rss[name] for name in rss_common)
    if base_rss_total > 0 and fresh_rss_total > 0:
        for name in rss_common:
            if (
                base_rss[name] < MIN_GATED_RSS_MB
                or fresh_rss[name] < MIN_GATED_RSS_MB
            ):
                continue
            base_share = base_rss[name] / base_rss_total
            fresh_share = fresh_rss[name] / fresh_rss_total
            if fresh_share > base_share * (1.0 + max_regression):
                problems.append(
                    f"{name}: peak-RSS share regressed "
                    f"{base_share:.1%} -> {fresh_share:.1%} "
                    f"(limit +{max_regression:.0%})"
                )

    base_peak = baseline.get("peak_rss_mb")
    fresh_peak = fresh.get("peak_rss_mb")
    if (
        base_peak is not None
        and fresh_peak is not None
        and float(base_peak) >= MIN_GATED_RSS_MB
        and float(fresh_peak) > float(base_peak) * (1.0 + max_regression)
    ):
        problems.append(
            f"run peak RSS regressed {float(base_peak):.0f} MiB -> "
            f"{float(fresh_peak):.0f} MiB (limit +{max_regression:.0%})"
        )
    if rss_ceiling_mb is not None:
        if fresh_peak is None:
            problems.append(
                "cannot check RSS ceiling: fresh run recorded no peak_rss_mb"
            )
        elif float(fresh_peak) > rss_ceiling_mb:
            problems.append(
                f"run peak RSS {float(fresh_peak):.0f} MiB exceeds ceiling "
                f"{rss_ceiling_mb:.0f} MiB"
            )

    digests = _scenario_digests(fresh)
    obj_digest = digests.get(REPLAY_OBJECT)
    col_digest = digests.get(REPLAY_COLUMNAR)
    if obj_digest is not None and col_digest is not None and obj_digest != col_digest:
        problems.append(
            "replay engines diverged: replay_object and replay_columnar "
            "summary digests differ (determinism contract broken)"
        )

    if min_speedup is not None:
        speedup = measured_speedup(fresh)
        if speedup is None:
            problems.append(
                "cannot measure columnar speedup: replay scenario pair "
                "missing from fresh run"
            )
        elif speedup < min_speedup:
            problems.append(
                f"columnar speedup {speedup:.2f}x below floor {min_speedup:.2f}x"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path("BENCH_scalability.json"),
        help="committed perf baseline",
    )
    parser.add_argument(
        "--fresh",
        type=Path,
        required=True,
        help="freshly generated BENCH_scalability.json to gate",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed per-scenario wall-share regression (fraction)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="required intra-run columnar speedup (off when omitted)",
    )
    parser.add_argument(
        "--rss-ceiling-mb",
        type=float,
        default=None,
        help="absolute peak-RSS ceiling for the fresh run (off when omitted)",
    )
    args = parser.parse_args(argv)

    baseline = json.loads(args.baseline.read_text())
    fresh = json.loads(args.fresh.read_text())

    speedup = measured_speedup(fresh)
    if speedup is not None:
        print(f"columnar replay speedup (fresh run): {speedup:.2f}x")
    baseline_speedup = measured_speedup(baseline)
    if baseline_speedup is not None:
        print(f"columnar replay speedup (baseline):  {baseline_speedup:.2f}x")

    fresh_peak = fresh.get("peak_rss_mb")
    if fresh_peak is not None:
        print(f"peak RSS (fresh run): {float(fresh_peak):.0f} MiB")

    problems = compare_reports(
        baseline,
        fresh,
        max_regression=args.max_regression,
        min_speedup=args.min_speedup,
        rss_ceiling_mb=args.rss_ceiling_mb,
    )
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
