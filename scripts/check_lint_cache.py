#!/usr/bin/env python
"""CI gate: the harmonylint incremental cache must actually pay for itself.

Runs the full lint twice against a fresh cache file — once cold (every
file analyzed) and once warm (every file replayed from the cache) — and
fails if:

* the warm run re-analyzes anything (a cache key or invalidation bug),
* the warm findings differ from the cold findings in any byte
  (a replay fidelity bug), or
* warm wall time exceeds ``--max-ratio`` (default 0.25) of cold wall
  time (the cache no longer saves meaningful work).

Usage::

    PYTHONPATH=src python scripts/check_lint_cache.py [--root .] \
        [--paths src tests] [--max-ratio 0.25]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

from repro.statics import lint_paths


def timed_run(paths, root, cache):
    start = time.perf_counter()
    report = lint_paths(paths, root=root, cache=cache)
    return report, time.perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument(
        "--paths", nargs="+", default=["src", "tests"],
        help="paths to lint, relative to --root",
    )
    parser.add_argument(
        "--max-ratio", type=float, default=0.25,
        help="maximum warm/cold wall-time ratio",
    )
    args = parser.parse_args(argv)
    root = Path(args.root).resolve()

    with tempfile.TemporaryDirectory() as tmp:
        cache = Path(tmp) / "lint-cache.json"
        cold, cold_s = timed_run(args.paths, root, cache)
        warm, warm_s = timed_run(args.paths, root, cache)

    ratio = warm_s / cold_s if cold_s > 0 else 0.0
    print(
        f"cold: {cold_s:.3f}s over {cold.files_checked} file(s) "
        f"({cold.cache_misses} analyzed)"
    )
    print(
        f"warm: {warm_s:.3f}s ({warm.cache_hits} replayed, "
        f"{warm.cache_misses} analyzed) — ratio {ratio:.2%}"
    )

    failures = []
    if warm.cache_misses != 0:
        failures.append(
            f"warm run re-analyzed {warm.cache_misses} file(s); "
            "expected a full cache replay"
        )
    cold_dicts = [f.to_dict() for f in cold.findings]
    warm_dicts = [f.to_dict() for f in warm.findings]
    if cold_dicts != warm_dicts:
        failures.append("warm findings differ from cold findings")
    if ratio > args.max_ratio:
        failures.append(
            f"warm/cold ratio {ratio:.2%} exceeds the "
            f"{args.max_ratio:.0%} budget"
        )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("lint cache gate ok")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
