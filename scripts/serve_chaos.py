#!/usr/bin/env python3
"""Serve chaos smoke: SIGKILL a live daemon under fault injection, restart,
verify /healthz recovers and the final digest matches an uninterrupted run.

Three phases against the same synthetic trace and the ``drill`` chaos
preset (capacity blackout + correlated outage + partial partition +
solver outage + injected control-step crashes):

1. **Reference**: ``repro serve`` runs the stream end to end, undisturbed.
2. **Kill**: a paced daemon (``--tick-delay``) with a live ``/healthz``
   endpoint is SIGKILLed once its write-ahead journal shows partial
   progress — no graceful shutdown, possibly a torn tail.
3. **Restart**: ``repro serve --restore`` resumes over the same state
   directory; the probe asserts ``/healthz`` answers 200 while the
   resumed loop runs, and the final summary (chain digest included) must
   equal the reference bit for bit.

Exit code 0 on success, 1 on any divergence.  Runtime is a few seconds
of compute plus the pacing delays — well inside a 5-minute CI budget::

    PYTHONPATH=src python scripts/serve_chaos.py [--hours 2] [--kill-after 5]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]


def log(message: str) -> None:
    print(f"[serve-chaos] {message}", flush=True)


def serve_command(state_dir: Path, hours: float, *extra: str) -> list[str]:
    return [
        sys.executable, "-m", "repro", "serve",
        "--state-dir", str(state_dir),
        "--hours", str(hours), "--seed", "13", "--load", "0.8",
        "--chaos", "drill", "--checkpoint-interval", "3",
        *extra,
    ]


def serve_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def journaled_ticks(state_dir: Path) -> int:
    """Complete (newline-terminated) tick records durably on disk."""
    journals = list(state_dir.glob("TICKS_*.jsonl"))
    if not journals:
        return 0
    raw = journals[0].read_text(encoding="utf-8", errors="replace")
    return sum(
        1
        for line in raw.split("\n")[:-1]
        if line.strip() and '"kind":"header"' not in line
    )


def http_port(state_dir: Path) -> int | None:
    """The auto-assigned health port, from the daemon's event log.

    The event log survives restarts, so the LAST ``http_listening`` entry
    is the live daemon's port — earlier ones belong to killed incarnations.
    """
    port = None
    for events in state_dir.glob("EVENTS_*.jsonl"):
        for line in events.read_text(errors="replace").splitlines():
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if event.get("event") == "http_listening":
                port = int(event["port"])
    return port


def probe_healthz(port: int) -> int | None:
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/healthz", timeout=1.0
        ) as response:
            return response.status
    except urllib.error.HTTPError as exc:
        return exc.code
    except (urllib.error.URLError, OSError):
        return None


def phase_reference(tmp: Path, hours: float) -> dict:
    log("reference run: undisturbed stream under drill chaos")
    result = subprocess.run(
        serve_command(tmp / "reference", hours),
        env=serve_env(), capture_output=True, text=True, check=True, timeout=240,
    )
    summary = json.loads(result.stdout)
    log(f"reference: {summary['ticks']} ticks, chain {summary['chain'][:12]}...")
    return summary


def phase_kill(tmp: Path, hours: float, kill_after: int, timeout: float) -> Path:
    state_dir = tmp / "chaos"
    log(f"chaos run: will SIGKILL after {kill_after} journaled tick(s)")
    process = subprocess.Popen(
        serve_command(state_dir, hours, "--tick-delay", "0.15", "--http-port", "0"),
        env=serve_env(), stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
    )
    deadline = time.monotonic() + timeout
    saw_healthy = False
    try:
        while journaled_ticks(state_dir) < kill_after:
            if process.poll() is not None:
                raise RuntimeError(
                    "daemon exited before the kill: "
                    + process.stderr.read().decode(errors="replace")
                )
            if time.monotonic() > deadline:
                raise RuntimeError("timed out waiting for journal progress")
            port = http_port(state_dir)
            if port is not None and probe_healthz(port) == 200:
                saw_healthy = True
            time.sleep(0.05)
        process.kill()
    finally:
        process.wait()
    if not saw_healthy:
        raise RuntimeError("/healthz never answered 200 before the kill")
    log(
        f"killed with {journaled_ticks(state_dir)} ticks journaled, "
        "/healthz was 200 beforehand"
    )
    return state_dir


def phase_restart(state_dir: Path, hours: float, reference: dict) -> bool:
    log("restart: repro serve --restore over the survivor state dir")
    process = subprocess.Popen(
        serve_command(
            state_dir, hours,
            "--restore", "--tick-delay", "0.15", "--http-port", "0",
        ),
        env=serve_env(), stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    recovered = False
    while process.poll() is None:
        port = http_port(state_dir)
        if port is not None and probe_healthz(port) == 200:
            recovered = True
        time.sleep(0.05)
    stdout, stderr = process.communicate()
    if process.returncode != 0:
        log(f"FAIL: restore run exited {process.returncode}: {stderr.strip()}")
        return False
    if not recovered:
        log("FAIL: /healthz never recovered to 200 during the restored run")
        return False
    summary = json.loads(stdout)
    if summary != reference:
        diverged = sorted(
            key for key in reference.keys() | summary.keys()
            if reference.get(key) != summary.get(key)
        )
        log(f"FAIL: restored summary diverged from reference on: {diverged}")
        return False
    log(
        f"restored run: /healthz recovered, {summary['ticks']} ticks, "
        f"chain matches reference ({summary['chain'][:12]}...)"
    )
    return True


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--hours", type=float, default=2.0)
    parser.add_argument(
        "--kill-after", type=int, default=5,
        help="journaled ticks to wait for before the SIGKILL (default 5)",
    )
    parser.add_argument(
        "--timeout", type=float, default=120.0,
        help="kill-phase budget in seconds (default 120)",
    )
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="serve-chaos-") as tmpdir:
        tmp = Path(tmpdir)
        reference = phase_reference(tmp, args.hours)
        state_dir = phase_kill(tmp, args.hours, args.kill_after, args.timeout)
        ok = phase_restart(state_dir, args.hours, reference)
    log("PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
