#!/usr/bin/env python3
"""Chaos smoke test: kill a supervised bench run mid-suite, resume, compare.

Two phases, both asserting the digest-invariance contract — a run that was
sabotaged and recovered must be indistinguishable (modulo timing fields)
from one that was never interrupted:

1. **Worker kill** (in-process): a scenario whose worker SIGKILLs itself on
   the first attempt is retried by :class:`ScenarioSupervisor` and must
   produce the same summary digest as an uninterrupted run.
2. **Suite kill + resume** (subprocess): a supervised ``repro bench``
   run is SIGKILLed — process group and all, workers included — once its
   journal shows partial progress; ``repro bench --resume`` then finishes
   the suite and the final ``BENCH_<suite>.json`` must carry exactly the
   reference run's summary digests.

Exit code 0 on success, 1 on any divergence.  Environment knobs
(``REPRO_BENCH_HOURS`` etc.) pass through to the bench, so CI can shrink
the suite.  Usage::

    PYTHONPATH=src python scripts/chaos_smoke.py [--suite scalability] [--workers 2]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro.resilience import transient_fault_scenario  # noqa: E402
from repro.runner import (  # noqa: E402
    Scenario,
    ScenarioRunner,
    ScenarioSupervisor,
    SupervisorConfig,
)


def log(message: str) -> None:
    print(f"[chaos-smoke] {message}", flush=True)


# ------------------------------------------------------- phase 1: worker kill


def phase_worker_kill(tmp: Path) -> bool:
    """SIGKILL a worker on its first attempt; the retry must digest equal."""
    inner = Scenario(
        name="relax_ref",
        task="relax_solve",
        params={"num_classes": 8, "num_types": 2, "W": 2, "seed": 0, "repeats": 1},
    )
    reference = ScenarioRunner("ref").run([inner], workers=1)["relax_ref"].digest()

    flaky = transient_fault_scenario(
        "relax_ref_killed", inner, tmp / "markers", fail_attempts=1, mode="kill"
    )
    config = SupervisorConfig(backoff_base_seconds=0.01, backoff_cap_seconds=0.05)
    report = ScenarioSupervisor("chaos", config).run([flaky])

    if report.quarantined:
        log(f"FAIL: worker-kill scenario quarantined: {report.quarantined}")
        return False
    result = report["relax_ref_killed"]
    if result.attempts != 2:
        log(f"FAIL: expected 2 attempts (kill + retry), got {result.attempts}")
        return False
    if result.digest() != reference:
        log(
            "FAIL: recovered digest diverged from uninterrupted run: "
            f"{result.digest()} != {reference}"
        )
        return False
    log(f"worker kill: retried once, digest matches reference ({reference[:12]}...)")
    return True


# --------------------------------------------- phase 2: suite kill and resume


def bench_command(suite: str, workers: int, output: Path, resume: bool) -> list[str]:
    command = [
        sys.executable, "-m", "repro", "bench", suite,
        "--workers", str(workers), "--supervise", "--output", str(output),
    ]
    if resume:
        command.append("--resume")
    return command


def bench_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return env


def find_journal(suite: str, directory: Path) -> Path | None:
    """The suite's journal file (its name carries a run-id component)."""
    candidates = sorted(directory.glob(f"JOURNAL_{suite}*.jsonl"))
    return candidates[0] if candidates else None


def complete_journal_lines(suite: str, directory: Path) -> int:
    """Scenario entries durably on disk (ignores header + torn tail)."""
    path = find_journal(suite, directory)
    if path is None:
        return 0
    raw = path.read_text(encoding="utf-8", errors="replace")
    return sum(
        1
        for line in raw.split("\n")[:-1]
        if line.strip() and '"kind":"header"' not in line
    )


def load_digests(bench_file: Path) -> dict[str, str]:
    payload = json.loads(bench_file.read_text())
    return {s["name"]: s["summary_digest"] for s in payload["scenarios"]}


def phase_suite_kill_resume(
    tmp: Path, suite: str, workers: int, kill_after: int, timeout: float
) -> bool:
    """SIGKILL a supervised bench mid-suite; --resume must match reference."""
    ref_dir = tmp / "reference"
    log(f"reference run: bench {suite} --supervise")
    subprocess.run(
        bench_command(suite, workers, ref_dir, resume=False),
        env=bench_env(), check=True, stdout=subprocess.DEVNULL,
    )
    reference = load_digests(ref_dir / f"BENCH_{suite}.json")
    log(f"reference: {len(reference)} scenarios")

    chaos_dir = tmp / "chaos"
    log(f"chaos run: will SIGKILL after {kill_after} journaled scenario(s)")
    process = subprocess.Popen(
        bench_command(suite, workers, chaos_dir, resume=False),
        env=bench_env(), stdout=subprocess.DEVNULL,
        start_new_session=True,  # so the kill takes workers down too
    )
    deadline = time.monotonic() + timeout
    try:
        while complete_journal_lines(suite, chaos_dir) < kill_after:
            if process.poll() is not None:
                log("FAIL: chaos run finished before it could be killed; "
                    "lower --kill-after or enlarge the suite")
                return False
            if time.monotonic() > deadline:
                log("FAIL: timed out waiting for journal progress")
                return False
            time.sleep(0.05)
        os.killpg(process.pid, signal.SIGKILL)
    finally:
        process.wait()
    journaled = complete_journal_lines(suite, chaos_dir)
    log(f"killed mid-suite with {journaled}/{len(reference)} scenarios journaled")
    if (chaos_dir / f"BENCH_{suite}.json").exists():
        log("FAIL: killed run should not have written its BENCH file yet")
        return False

    log("resume run: bench --resume")
    subprocess.run(
        bench_command(suite, workers, chaos_dir, resume=True),
        env=bench_env(), check=True, stdout=subprocess.DEVNULL,
    )
    resumed = load_digests(chaos_dir / f"BENCH_{suite}.json")
    if resumed != reference:
        diverged = sorted(
            name for name in reference.keys() | resumed.keys()
            if reference.get(name) != resumed.get(name)
        )
        log(f"FAIL: resumed digests diverged from reference for: {diverged}")
        return False
    log(f"resume: all {len(resumed)} digests match the uninterrupted reference")
    return True


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--suite", default="scalability")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--kill-after", type=int, default=3,
        help="journaled scenarios to wait for before the SIGKILL (default 3)",
    )
    parser.add_argument(
        "--timeout", type=float, default=600.0,
        help="per-phase budget in seconds (default 600)",
    )
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as tmpdir:
        tmp = Path(tmpdir)
        ok = phase_worker_kill(tmp)
        ok = phase_suite_kill_resume(
            tmp, args.suite, args.workers, args.kill_after, args.timeout
        ) and ok
    log("PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
