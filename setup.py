"""Shim for legacy editable installs on environments without PEP 517 wheel support."""

from setuptools import setup

setup()
