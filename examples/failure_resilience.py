"""Failure resilience: HARMONY with machine crashes and repairs.

Usage::

    python examples/failure_resilience.py [--rate 0.05] [--hours 2]

Injects machine failures (Poisson per machine-hour); crashed machines lose
their tasks (restarted elsewhere from scratch) and stay under repair for an
hour.  Shows the monitoring/controller loop absorbing the churn — Fig. 8's
monitoring module "reports any failures and anomalies to the management
framework".
"""

from __future__ import annotations

import argparse

from repro.analysis import ascii_table
from repro.simulation import (
    ClusterConfig,
    ClusterSimulator,
    HarmonyConfig,
    HarmonySimulation,
)
from repro.trace import SyntheticTraceConfig, generate_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rate", type=float, default=0.05,
                        help="failures per powered machine-hour")
    parser.add_argument("--hours", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    trace = generate_trace(
        SyntheticTraceConfig(
            horizon_hours=args.hours, seed=args.seed, total_machines=300,
            load_factor=0.55,
        )
    )
    config = HarmonyConfig(policy="cbs", predictor="ewma")
    rows = []
    simulation = HarmonySimulation(config, trace)
    for rate in (0.0, args.rate):
        policy = simulation.build_policy()
        simulator = ClusterSimulator(
            tasks=simulation._prepare_tasks(),
            horizon=trace.horizon,
            machine_models=config.fleet,
            policy=policy,
            class_of=lambda task: simulation._class_by_uid[task.uid],
            config=ClusterConfig(
                control_interval=config.control_interval,
                failure_rate_per_machine_hour=rate,
                repair_seconds=3600.0,
            ),
            relabel=simulation.relabel_class,
        )
        metrics = simulator.run()
        rows.append(
            [
                rate,
                sum(p.stats.failures for p in simulator.pools),
                simulator.tasks_killed,
                f"{metrics.num_scheduled}/{metrics.num_submitted}",
                f"{metrics.mean_delay(include_unscheduled_at=trace.horizon):.0f}s",
                f"{simulator.energy.total_kwh:.1f}",
            ]
        )

    print(
        ascii_table(
            ["failure rate", "crashes", "tasks killed", "scheduled",
             "mean delay", "kWh"],
            rows,
            title="HARMONY (CBS) under machine failures",
        )
    )


if __name__ == "__main__":
    main()
