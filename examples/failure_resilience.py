"""Failure resilience: HARMONY under machine crashes, outages and blackouts.

Usage::

    python examples/failure_resilience.py [--rate 0.05] [--hours 2] [--guard]

Replays the same trace under a matrix of fault scenarios — Poisson machine
crashes, a correlated domain outage killing 30% of every pool mid-run, and
a 3-interval monitoring blackout — and reports the resilience metrics
(availability, MTTR, task-restart latency, SLO attainment).  With
``--guard`` the CBS controller is wrapped in a
:class:`~repro.resilience.guard.GuardedController`: decisions are validated
and clamped, and a forecast-residual circuit breaker falls back to reactive
threshold provisioning when monitoring goes dark — Fig. 8's monitoring
module "reports any failures and anomalies to the management framework".

Each scenario builds a **fresh** simulation pipeline (sharing only the
fitted classifier): predictors warmed by one run must not leak state into
the next, or the comparison is skewed.
"""

from __future__ import annotations

import argparse
from dataclasses import replace

from repro.analysis import ascii_table
from repro.resilience import (
    CorrelatedOutage,
    FaultPlan,
    MonitoringBlackout,
    RandomMachineFailures,
)
from repro.simulation import HarmonyConfig, HarmonySimulation
from repro.trace import SyntheticTraceConfig, generate_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rate", type=float, default=0.05,
                        help="failures per powered machine-hour")
    parser.add_argument("--hours", type=float, default=2.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--guard", action="store_true",
                        help="wrap the controller in a GuardedController")
    args = parser.parse_args()

    trace = generate_trace(
        SyntheticTraceConfig(
            horizon_hours=args.hours, seed=args.seed, total_machines=300,
            load_factor=0.55,
        )
    )
    base = HarmonyConfig(policy="cbs", predictor="ewma", guard=args.guard)
    scenarios: list[tuple[str, FaultPlan | None]] = [
        ("fault-free", None),
        ("poisson", FaultPlan(seed=1).with_fault(
            RandomMachineFailures(rate_per_machine_hour=args.rate))),
        ("outage 30%", FaultPlan(seed=1).with_fault(
            CorrelatedOutage(time=trace.horizon / 2, fraction=0.3))),
        ("blackout x3", FaultPlan(seed=1).with_fault(
            MonitoringBlackout(time=trace.horizon / 3, intervals=3))),
    ]

    classifier = None
    rows = []
    for name, plan in scenarios:
        # A fresh simulation per scenario: predictors and controller state
        # warmed by one run must not leak into the next.
        simulation = HarmonySimulation(
            replace(base, fault_plan=plan), trace, classifier=classifier
        )
        classifier = simulation.classifier
        result = simulation.run()
        metrics = result.metrics
        rows.append(
            [
                name,
                len(metrics.failure_events),
                result.tasks_killed,
                f"{metrics.num_scheduled}/{metrics.num_submitted}",
                f"{metrics.availability():.3f}",
                f"{metrics.mttr(censor_at=trace.horizon):.0f}s",
                f"{metrics.mean_restart_latency(censor_at=trace.horizon):.0f}s",
                f"{metrics.slo_attainment(300.0, include_unscheduled_at=trace.horizon):.3f}",
                result.guard_stats.trips if result.guard_stats else "-",
            ]
        )

    print(
        ascii_table(
            ["scenario", "crashes", "killed", "scheduled", "availability",
             "MTTR", "restart lat", "SLO(5m)", "trips"],
            rows,
            title="HARMONY (CBS%s) under injected faults"
                  % (", guarded" if args.guard else ""),
        )
    )


if __name__ == "__main__":
    main()
