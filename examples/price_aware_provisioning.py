"""Price-aware provisioning: HARMONY under time-varying electricity prices.

Usage::

    python examples/price_aware_provisioning.py [--hours 4] [--seed 3]

The CBS objective (Eq. 14) weighs energy at the *current* price p_t, so the
controller sheds marginal (low-utility) capacity during expensive hours and
provisions generously when power is cheap.  This example runs the same
workload under a flat tariff and a time-of-use tariff and compares cost and
provisioning behaviour — one of the paper's motivating extensions
("run-time electricity prices", Section I).
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis import ascii_series, ascii_table
from repro.energy import constant_price, time_of_use_price
from repro.simulation import HarmonyConfig, HarmonySimulation
from repro.trace import SyntheticTraceConfig, generate_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=float, default=4.0)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    trace = generate_trace(
        SyntheticTraceConfig(
            horizon_hours=args.hours, seed=args.seed, total_machines=300, load_factor=0.55
        )
    )
    tariffs = {
        "flat $0.11/kWh": constant_price(0.11),
        "time-of-use": time_of_use_price(off_peak=0.07, mid_peak=0.11, on_peak=0.18),
    }

    results = {}
    classifier = None
    for name, tariff in tariffs.items():
        config = HarmonyConfig(policy="cbs", price=tariff)
        simulation = HarmonySimulation(config, trace, classifier=classifier)
        classifier = simulation.classifier
        results[name] = simulation.run()

    print("== Cost comparison (same workload, same fleet) ==")
    rows = []
    for name, result in results.items():
        summary = result.summary()
        rows.append(
            [
                name,
                f"{summary['energy_kwh']:.1f}",
                f"${summary['energy_cost']:.2f}",
                f"{summary['mean_active_machines']:.0f}",
                f"{summary['mean_delay_s']:.0f}s",
                f"{summary['tasks_scheduled']}/{summary['tasks_submitted']}",
            ]
        )
    print(
        ascii_table(
            ["tariff", "kWh", "energy cost", "mean machines", "mean delay", "scheduled"],
            rows,
        )
    )

    print("\n== Active machines over time ==")
    for name, result in results.items():
        times, powered = result.metrics.machines_series()
        if times.size:
            print(ascii_series(times, powered, height=7, label=name))

    tou = tariffs["time-of-use"]
    times = np.arange(0, trace.horizon, 300.0)
    print(ascii_series(times, np.array([tou(t) for t in times]), height=5,
                       label="time-of-use price ($/kWh)"))


if __name__ == "__main__":
    main()
