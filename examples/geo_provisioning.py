"""Geo-distributed provisioning: follow the cheap electricity.

Usage::

    python examples/geo_provisioning.py

Two data centers run phase-shifted time-of-use tariffs (think: opposite
coasts).  The same container demand is planned every two hours as a single
CBS-RELAX instance spanning both sites; the optimizer shifts machines to
whichever site is off-peak, except for a data-local class pinned to one
site.  (Extension of the paper's price-aware objective, Section I.)
"""

from __future__ import annotations

import numpy as np

from repro.analysis import ascii_table
from repro.classification import ClassifierConfig, TaskClassifier
from repro.containers import ContainerManager
from repro.energy import table2_fleet, time_of_use_price, PriceSchedule
from repro.provisioning import (
    CbsRelaxSolver,
    DataCenter,
    auto_offsets,
    build_geo_problem,
    machines_by_dc,
)
from repro.trace import SyntheticTraceConfig, generate_trace


def shifted(schedule: PriceSchedule, hours: float) -> PriceSchedule:
    """A tariff shifted in time (a site in another timezone)."""
    return PriceSchedule(fn=lambda t: schedule(t + hours * 3600.0), name=f"shift{hours}")


def main() -> None:
    trace = generate_trace(
        SyntheticTraceConfig(horizon_hours=2.0, seed=3, total_machines=200)
    )
    classifier = TaskClassifier(ClassifierConfig(seed=3)).fit(list(trace.tasks))
    manager = ContainerManager(classifier)
    class_ids = sorted(manager.specs)

    tou = time_of_use_price(off_peak=0.05, mid_peak=0.10, on_peak=0.18)
    fleet = table2_fleet(0.05)
    east, west = auto_offsets(
        [
            DataCenter(name="east", fleet=fleet, price=tou),
            DataCenter(name="west", fleet=fleet, price=shifted(tou, 9.0)),
        ]
    )

    # A production class pinned to "east" (data locality).
    pinned = next(
        (cid for cid in class_ids if manager.spec(cid).task_class.group.name == "PRODUCTION"),
        class_ids[0],
    )
    demand = np.full((1, len(class_ids)), 3.0)
    solver = CbsRelaxSolver()

    rows = []
    for hour in range(0, 24, 2):
        problem = build_geo_problem(
            [east, west],
            manager.specs,
            demand,
            interval_seconds=300.0,
            now=hour * 3600.0,
            locality={pinned: frozenset({"east"})},
        )
        solution = solver.solve(problem)
        by_dc = machines_by_dc(problem, solution.z[0])
        rows.append(
            [
                f"{hour:02d}:00",
                f"{east.price(hour * 3600.0):.2f}",
                f"{west.price(hour * 3600.0):.2f}",
                f"{by_dc.get('east', 0):.1f}",
                f"{by_dc.get('west', 0):.1f}",
            ]
        )

    print(
        ascii_table(
            ["hour", "east $/kWh", "west $/kWh", "east machines", "west machines"],
            rows,
            title="Machines follow the off-peak tariff "
            f"(class {manager.spec(pinned).task_class.name} pinned east)",
        )
    )


if __name__ == "__main__":
    main()
