"""Quickstart: generate a workload, run HARMONY (CBS), print the outcome.

Usage::

    python examples/quickstart.py [--hours 2] [--machines 300] [--seed 7]

This is the smallest end-to-end tour of the public API: synthesize a
Google-like trace, fit the two-step task classifier, and drive the full
MPC provisioning loop (Algorithm 1) in a simulated cluster.
"""

from __future__ import annotations

import argparse

from repro import HarmonyConfig, HarmonySimulation
from repro.trace import SyntheticTraceConfig, generate_trace, trace_summary


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=float, default=2.0, help="trace length")
    parser.add_argument("--machines", type=int, default=300, help="trace census size")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print("=== 1. Generating a synthetic Google-like trace ===")
    trace = generate_trace(
        SyntheticTraceConfig(
            horizon_hours=args.hours,
            seed=args.seed,
            total_machines=args.machines,
            load_factor=0.55,
        )
    )
    for key, value in trace_summary(trace).items():
        print(f"  {key}: {value}")

    print("\n=== 2. Running HARMONY (CBS policy) ===")
    simulation = HarmonySimulation(HarmonyConfig(policy="cbs"), trace)
    print(f"  task classes: {simulation.classifier.num_classes}")
    result = simulation.run()

    print("\n=== 3. Results ===")
    summary = result.summary()
    print(f"  tasks scheduled:      {summary['tasks_scheduled']}/{summary['tasks_submitted']}")
    print(f"  energy:               {summary['energy_kwh']:.1f} kWh "
          f"(${summary['energy_cost']:.2f})")
    print(f"  switching:            {summary['switch_events']} events "
          f"(${summary['switch_cost']:.2f})")
    print(f"  mean active machines: {summary['mean_active_machines']:.1f}")
    print(f"  mean scheduling delay: {summary['mean_delay_s']:.1f} s")
    for group, stats in summary["delay_by_group"].items():
        print(
            f"    {group:>10}: mean {stats['mean_s']:7.1f} s   "
            f"p95 {stats['p95_s']:8.1f} s   "
            f"immediate {stats['immediate_fraction']:.0%}"
        )


if __name__ == "__main__":
    main()
