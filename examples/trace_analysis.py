"""Workload characterization: reproduce the paper's Section III analysis.

Usage::

    python examples/trace_analysis.py [--hours 12] [--seed 0]

Prints the machine census (Fig. 5), demand dynamics (Figs. 1-2), duration
CDFs (Fig. 6), task-size heterogeneity (Fig. 7), the two-step K-means task
classification (Section V / Figs. 10-18), and per-group arrival rates
(Fig. 19) — all on a synthetic trace calibrated to the paper's marginals.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.analysis import ascii_series, ascii_table, format_cdf_rows
from repro.classification import ClassifierConfig, TaskClassifier
from repro.trace import (
    PriorityGroup,
    SyntheticTraceConfig,
    arrival_rate_series,
    demand_timeseries,
    generate_trace,
    machine_census_table,
    size_scatter_by_group,
)
from repro.trace.statistics import duration_cdf_by_group


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=float, default=12.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    trace = generate_trace(
        SyntheticTraceConfig(horizon_hours=args.hours, seed=args.seed, total_machines=600)
    )

    print("== Machine heterogeneity (Fig. 5) ==")
    rows = machine_census_table(trace)
    print(
        ascii_table(
            ["platform", "cpu", "memory", "count", "share"],
            [
                [r["platform_id"], r["cpu_capacity"], r["memory_capacity"], r["count"], f"{r['share']:.1%}"]
                for r in rows
            ],
        )
    )

    print("\n== Total demand over time (Figs. 1-2) ==")
    times, cpu, mem = demand_timeseries(trace, 300.0)
    print(ascii_series(times, cpu, label="CPU demand (machine units)"))
    print(ascii_series(times, mem, label="Memory demand (machine units)"))

    print("\n== Task duration CDF per priority group (Fig. 6) ==")
    points = [10, 100, 1000, 3600, 36000, 864000]
    for group, (x, f) in duration_cdf_by_group(trace).items():
        rows = format_cdf_rows(x, points)
        cells = "  ".join(f"{label}:{frac:.2f}" for label, frac in rows)
        print(f"  {group.name.lower():>10}  {cells}")

    print("\n== Task size heterogeneity (Fig. 7) ==")
    for group, scatter in size_scatter_by_group(trace).items():
        print(
            f"  {group.name.lower():>10}: n={scatter.num_tasks:6d}  "
            f"span={scatter.size_span_orders:.1f} orders  "
            f"corr(cpu,mem)={scatter.cpu_memory_correlation:+.2f}  "
            f"modal@(0.0125,0.0159)={scatter.modal_fraction(0.0125, 0.0159):.0%}"
        )

    print("\n== Two-step task classification (Section V, Figs. 10-18) ==")
    classifier = TaskClassifier(ClassifierConfig(seed=args.seed)).fit(list(trace.tasks))
    print(
        ascii_table(
            ["class", "tasks", "cpu mean±std", "mem mean±std", "duration", "CV^2"],
            [
                [
                    row["name"],
                    row["num_tasks"],
                    f"{row['cpu_mean']:.4f}±{row['cpu_std']:.4f}",
                    f"{row['memory_mean']:.4f}±{row['memory_std']:.4f}",
                    f"{row['duration_mean_s']:.0f}s",
                    f"{row['duration_scv']:.2f}",
                ]
                for row in classifier.summary()
            ],
        )
    )

    print("\n== Aggregated arrival rates (Fig. 19) ==")
    rates = arrival_rate_series(trace, 300.0)
    num_bins = len(next(iter(rates.values())))
    times = (np.arange(num_bins) + 0.5) * 300.0
    for group in PriorityGroup:
        print(ascii_series(times, rates[group] * 3600, height=6,
                           label=f"{group.name.lower()} arrivals/hour"))


if __name__ == "__main__":
    main()
