"""Capacity planning: from workload statistics to container counts.

Usage::

    python examples/capacity_planning.py [--seed 0]

Shows the analytical core of HARMONY without running a simulation:

1. fit the two-step task classifier on a trace (Section V);
2. size one container per class by statistical multiplexing (Eq. 3);
3. invert the M/G/N delay model (Eqs. 1-2) to find the container count
   each class needs at several arrival-rate levels and delay SLOs;
4. sweep the violation bound epsilon to show the sizing/efficiency
   trade-off.
"""

from __future__ import annotations

import argparse

from repro.analysis import ascii_table
from repro.classification import ClassifierConfig, TaskClassifier
from repro.containers import ContainerManager, ContainerManagerConfig
from repro.queueing import MGNQueue
from repro.trace import SyntheticTraceConfig, generate_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    trace = generate_trace(
        SyntheticTraceConfig(horizon_hours=6.0, seed=args.seed, total_machines=400)
    )
    classifier = TaskClassifier(ClassifierConfig(seed=args.seed)).fit(list(trace.tasks))
    manager = ContainerManager(classifier, ContainerManagerConfig(epsilon=0.05))

    print("== Container sizing per class (Eq. 3, epsilon=0.05) ==")
    rows = []
    for class_id in sorted(manager.specs):
        spec = manager.spec(class_id)
        leaf = spec.task_class
        rows.append(
            [
                leaf.name,
                leaf.num_tasks,
                f"{leaf.cpu_mean:.4f}",
                f"{spec.cpu:.4f}",
                f"{leaf.memory_mean:.4f}",
                f"{spec.memory:.4f}",
                f"{spec.overhead_ratio:.2f}x",
            ]
        )
    print(
        ascii_table(
            ["class", "tasks", "cpu mean", "cpu sized", "mem mean", "mem sized", "overhead"],
            rows,
        )
    )

    print("\n== Containers needed vs arrival rate (Eqs. 1-2) ==")
    biggest = max(manager.specs.values(), key=lambda s: s.task_class.num_tasks).task_class
    print(
        f"class {biggest.name}: mean duration {biggest.duration_mean:.0f}s, "
        f"CV^2 {biggest.duration_scv:.2f}, SLO {manager.slo_for(biggest):.0f}s"
    )
    rows = []
    for rate_per_hour in (10, 50, 200, 1000, 5000):
        rate = rate_per_hour / 3600.0
        queue = MGNQueue(rate, biggest.service_rate, biggest.duration_scv)
        count = manager.containers_for_class(biggest, rate)
        rows.append(
            [
                rate_per_hour,
                f"{queue.offered_load:.1f}",
                count,
                f"{queue.mean_wait(count):.1f}s",
                f"{queue.utilization(count):.0%}",
            ]
        )
    print(
        ascii_table(
            ["arrivals/hour", "offered load", "containers", "mean wait", "utilization"],
            rows,
        )
    )

    print("\n== Epsilon sweep: violation bound vs reserved capacity ==")
    rows = []
    for epsilon in (0.01, 0.05, 0.10, 0.25):
        mgr = ContainerManager(classifier, ContainerManagerConfig(epsilon=epsilon))
        total_cpu = sum(
            spec.cpu * spec.task_class.num_tasks for spec in mgr.specs.values()
        )
        mean_cpu = sum(
            spec.task_class.cpu_mean * spec.task_class.num_tasks
            for spec in mgr.specs.values()
        )
        rows.append([f"{epsilon:.2f}", f"{total_cpu / mean_cpu:.3f}x"])
    print(ascii_table(["epsilon", "reserved/mean cpu"], rows))
    print(
        "\nTighter epsilon -> larger containers -> more machines: the"
        " statistical-multiplexing dial of Section VII-A."
    )


if __name__ == "__main__":
    main()
