"""The paper's headline experiment: CBS vs CBP vs heterogeneity-oblivious.

Usage::

    python examples/policy_comparison.py [--hours 6] [--seed 7] [--load 0.6]

Replays the same trace under the three provisioning policies of Section IX
and prints the Figs. 21-26 data: active servers over time, scheduling-delay
distributions per priority group, and total energy with relative savings.
"""

from __future__ import annotations

import argparse

from repro.analysis import ascii_series, ascii_table, format_cdf_rows
from repro.simulation import HarmonyConfig, run_policy_comparison
from repro.simulation.harmony import energy_savings
from repro.trace import PriorityGroup, SyntheticTraceConfig, generate_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=float, default=6.0)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--load", type=float, default=0.6)
    args = parser.parse_args()

    trace = generate_trace(
        SyntheticTraceConfig(
            horizon_hours=args.hours,
            seed=args.seed,
            total_machines=400,
            load_factor=args.load,
        )
    )
    print(f"trace: {trace.num_tasks} tasks over {args.hours:.0f} h")

    results = run_policy_comparison(trace, HarmonyConfig())

    print("\n== Active servers over time (Figs. 21-22) ==")
    for policy, result in results.items():
        times, powered = result.metrics.machines_series()
        if times.size:
            print(ascii_series(times, powered, height=6, label=policy))

    print("\n== Scheduling delay per priority group (Figs. 23-25) ==")
    points = [1, 60, 300, 1800, 7200]
    for policy, result in results.items():
        print(f"  --- {policy} ---")
        delays = result.metrics.delays_by_group(include_unscheduled_at=trace.horizon)
        for group in PriorityGroup:
            rows = format_cdf_rows(delays[group], points)
            cells = "  ".join(f"{label}:{frac:.2f}" for label, frac in rows)
            print(f"    {group.name.lower():>10}  {cells}")

    print("\n== Total energy (Fig. 26) ==")
    savings = energy_savings(results)
    rows = [
        [
            policy,
            f"{r.energy_kwh:.1f}",
            f"${r.energy_cost:.2f}",
            f"${r.switch_cost:.2f}",
            f"${r.total_cost:.2f}",
            f"{savings[policy]:+.1%}",
        ]
        for policy, r in results.items()
    ]
    print(
        ascii_table(
            ["policy", "kWh", "energy $", "switch $", "total $", "vs baseline"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
